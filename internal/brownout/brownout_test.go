package brownout

import (
	"testing"

	"iscope/internal/units"
)

func mustLadder(t *testing.T, cfg Config) *Ladder {
	t.Helper()
	l, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestPressure(t *testing.T) {
	cases := []struct {
		shortfall, soc, want float64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{1, 1, 0}, // full battery absorbs any shortfall
		{0.5, 0.5, 0.25},
		{-3, 0.5, 0}, // clamped
		{2, -1, 1},   // clamped both ways
	}
	for _, c := range cases {
		if got := Pressure(c.shortfall, c.soc); got != c.want {
			t.Errorf("Pressure(%v, %v) = %v, want %v", c.shortfall, c.soc, got, c.want)
		}
	}
}

// TestLadderClimbsOneStagePerDwell: a sudden full collapse must walk
// the ladder up one rung per escalation dwell, never jump.
func TestLadderClimbsOneStagePerDwell(t *testing.T) {
	l := mustLadder(t, Config{DwellUp: 100, DwellDown: 1000})
	now := units.Seconds(0)
	// First observation at t=0 cannot escalate (dwell counts from 0).
	if st, changed := l.Observe(now, 1, 0); st != StageNormal || changed {
		t.Fatalf("t=0: stage %v changed=%v, want normal unchanged", st, changed)
	}
	for want := StageDownlevel; want <= StageShed; want++ {
		now += 100
		st, changed := l.Observe(now, 1, 0)
		if st != want || !changed {
			t.Fatalf("t=%v: stage %v changed=%v, want %v", now, st, changed, want)
		}
	}
	// Saturated at the top rung.
	if st, changed := l.Observe(now+100, 1, 0); st != StageShed || changed {
		t.Fatalf("top rung moved: %v changed=%v", st, changed)
	}
}

// TestLadderRecoveryDwell: de-escalation requires the pressure to stay
// low for the full recovery dwell, one rung per dwell.
func TestLadderRecoveryDwell(t *testing.T) {
	l := mustLadder(t, Config{DwellUp: 10, DwellDown: 500})
	now := units.Seconds(0)
	for l.Stage() < StageDefer {
		now += 10
		l.Observe(now, 1, 0)
	}
	// Pressure clears; the first low observation only starts the clock.
	if st, changed := l.Observe(now+1, 0, 0); st != StageDefer || changed {
		t.Fatalf("immediate de-escalation: %v changed=%v", st, changed)
	}
	// Still inside the dwell.
	if st, _ := l.Observe(now+400, 0, 0); st != StageDefer {
		t.Fatalf("de-escalated inside the dwell: %v", st)
	}
	// Dwell elapsed: one rung down.
	if st, changed := l.Observe(now+502, 0, 0); st != StageDownlevel || !changed {
		t.Fatalf("after dwell: %v changed=%v, want down-level", st, changed)
	}
	// The next rung needs its own full dwell.
	if st, _ := l.Observe(now+600, 0, 0); st != StageDownlevel {
		t.Fatalf("second rung fell too early: %v", st)
	}
	if st, _ := l.Observe(now+502+500, 0, 0); st != StageNormal {
		t.Fatalf("want normal after two dwells, got %v", st)
	}
}

// TestLadderHysteresisPreventsOscillation: pressure flapping around a
// threshold faster than the dwells must not flap the stage.
func TestLadderHysteresisPreventsOscillation(t *testing.T) {
	l := mustLadder(t, Config{DwellUp: 60, DwellDown: 600})
	now := units.Seconds(0)
	for l.Stage() < StageDownlevel {
		now += 60
		l.Observe(now, 0.2, 0)
	}
	transitions := 0
	for i := 0; i < 100; i++ {
		now += 30
		shortfall := 0.2
		if i%2 == 0 {
			shortfall = 0.1 // below the first threshold
		}
		if _, changed := l.Observe(now, shortfall, 0); changed {
			transitions++
		}
	}
	if transitions != 0 {
		t.Fatalf("flapping pressure caused %d transitions, want 0", transitions)
	}
}

// TestLadderRecoveryResetOnRelapse: a pressure spike during the
// recovery dwell must restart the clock.
func TestLadderRecoveryResetOnRelapse(t *testing.T) {
	l := mustLadder(t, Config{DwellUp: 10, DwellDown: 300})
	now := units.Seconds(0)
	for l.Stage() < StageDownlevel {
		now += 10
		l.Observe(now, 1, 0)
	}
	l.Observe(now+10, 0, 0)    // recovery clock starts
	l.Observe(now+200, 0.2, 0) // relapse to the current rung resets it
	if st, _ := l.Observe(now+320, 0, 0); st != StageDownlevel {
		t.Fatalf("relapse did not reset the recovery dwell: %v", st)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		func() Config { c := DefaultConfig(); c.Thresholds = [4]float64{0.5, 0.4, 0.6, 0.7}; return c }(),
		func() Config { c := DefaultConfig(); c.Thresholds[3] = 1.5; return c }(),
		func() Config { c := DefaultConfig(); c.ReserveFrac = 1; return c }(),
		func() Config { c := DefaultConfig(); c.DownlevelFrac = 0; return c }(),
		func() Config { c := DefaultConfig(); c.MaxHold = -1; return c }(),
		func() Config { c := DefaultConfig(); c.DeferSlack = 0.5; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCaptureRestoreState(t *testing.T) {
	l := mustLadder(t, Config{})
	now := units.Seconds(0)
	for l.Stage() < StageDefer {
		now += units.Minutes(10)
		l.Observe(now, 1, 0)
	}
	st := l.CaptureState()
	fresh := mustLadder(t, Config{})
	if err := fresh.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if fresh.CaptureState() != st {
		t.Fatal("restored state differs from the capture")
	}
	if err := fresh.RestoreState(State{Stage: NumStages}); err == nil {
		t.Fatal("out-of-range stage accepted")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("t1=0.1, t2=0.2, down=45m, reserve=0.3, restarts=5, hold=3600, slack=2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if cfg.Thresholds[0] != 0.1 || cfg.Thresholds[1] != 0.2 {
		t.Errorf("thresholds not applied: %v", cfg.Thresholds)
	}
	if cfg.DwellDown != units.Minutes(45) || cfg.MaxHold != 3600 {
		t.Errorf("durations not applied: down=%v hold=%v", cfg.DwellDown, cfg.MaxHold)
	}
	if cfg.ReserveFrac != 0.3 || cfg.MaxRestarts != 5 || cfg.DeferSlack != 2 {
		t.Errorf("scalars not applied: %+v", cfg)
	}
	// Untouched keys keep defaults.
	if cfg.DwellUp != DefaultConfig().DwellUp {
		t.Errorf("unset key lost its default: %v", cfg.DwellUp)
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != DefaultConfig() {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
	for _, bad := range []string{"nope", "t9=1", "t1=x", "t1=0.9,t2=0.1", "up"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}
