package cluster

import (
	"fmt"

	"iscope/internal/units"
	"iscope/internal/workload"
)

// SliceState is the serializable form of a live Slice. JobRef is an
// opaque job identifier supplied by the caller (the scheduler uses the
// job's index in its workload), so the cluster never assumes how jobs
// are stored.
type SliceState struct {
	JobRef        int
	Serial        int
	ProcID        int
	AssignedLevel int
	Level         int
	Remaining     float64
	LastUpdate    units.Seconds
	Running       bool
	Done          bool
	Finish        units.Seconds
	Gen           int
	Draw          units.Watts
}

// ProcState is the serializable form of one processor's mutable state.
// Current holds zero or one entries.
type ProcState struct {
	Current     []SliceState
	Queue       []SliceState
	UtilTime    units.Seconds
	BusySince   units.Seconds
	Backlog     units.Seconds
	Offline     bool
	OfflineDraw units.Watts
}

// State is a snapshot of every mutable field in the datacenter. The
// aggregate Demand is stored verbatim rather than recomputed on
// restore: it is accumulated incrementally during the run, and resummed
// floating-point terms would not be bit-identical.
type State struct {
	Procs  []ProcState
	Demand units.Watts
}

// CaptureState snapshots the datacenter. jobRef maps each slice's job
// to a stable identifier the caller can resolve again on restore.
func (dc *Datacenter) CaptureState(jobRef func(*workload.Job) int) State {
	st := State{Procs: make([]ProcState, len(dc.Procs)), Demand: dc.demand}
	cap := func(s *Slice) SliceState {
		return SliceState{
			JobRef:        jobRef(s.Job),
			Serial:        s.Serial,
			ProcID:        s.ProcID,
			AssignedLevel: s.AssignedLevel,
			Level:         s.Level,
			Remaining:     s.remaining,
			LastUpdate:    s.lastUpdate,
			Running:       s.running,
			Done:          s.done,
			Finish:        s.Finish,
			Gen:           s.Gen,
			Draw:          s.draw,
		}
	}
	for i := range dc.Procs {
		ps := ProcState{
			UtilTime:    dc.utilTime[i],
			BusySince:   dc.busySince[i],
			Backlog:     dc.backlog[i],
			Offline:     dc.offline[i],
			OfflineDraw: dc.offlineDraw[i],
		}
		if cur := dc.current[i]; cur != nil {
			ps.Current = []SliceState{cap(cur)}
		}
		for _, q := range dc.queues[i].items() {
			ps.Queue = append(ps.Queue, cap(q))
		}
		st.Procs[i] = ps
	}
	return st
}

// RestoreState overlays a snapshot onto a freshly built datacenter of
// the same shape. job resolves the identifiers produced by jobRef at
// capture time. It returns the rebuilt slices keyed by Serial so the
// caller can re-attach pending events to them.
func (dc *Datacenter) RestoreState(st State, job func(int) (*workload.Job, error)) (map[int]*Slice, error) {
	if len(st.Procs) != len(dc.Procs) {
		return nil, fmt.Errorf("cluster: snapshot has %d processors, datacenter has %d", len(st.Procs), len(dc.Procs))
	}
	slices := make(map[int]*Slice)
	restore := func(ss SliceState) (*Slice, error) {
		if _, dup := slices[ss.Serial]; dup {
			return nil, fmt.Errorf("cluster: snapshot repeats slice serial %d", ss.Serial)
		}
		j, err := job(ss.JobRef)
		if err != nil {
			return nil, fmt.Errorf("cluster: slice serial %d: %w", ss.Serial, err)
		}
		s := &Slice{
			Job:           j,
			Serial:        ss.Serial,
			ProcID:        ss.ProcID,
			AssignedLevel: ss.AssignedLevel,
			Level:         ss.Level,
			remaining:     ss.Remaining,
			lastUpdate:    ss.LastUpdate,
			running:       ss.Running,
			done:          ss.Done,
			Finish:        ss.Finish,
			Gen:           ss.Gen,
			draw:          ss.Draw,
		}
		slices[ss.Serial] = s
		return s, nil
	}
	for i, ps := range st.Procs {
		dc.utilTime[i] = ps.UtilTime
		dc.busySince[i] = ps.BusySince
		dc.backlog[i] = ps.Backlog
		dc.offline[i] = ps.Offline
		dc.offlineDraw[i] = ps.OfflineDraw
		dc.current[i] = nil
		dc.queues[i].reset()
		if len(ps.Current) > 1 {
			return nil, fmt.Errorf("cluster: processor %d snapshot has %d running slices", i, len(ps.Current))
		}
		if len(ps.Current) == 1 {
			s, err := restore(ps.Current[0])
			if err != nil {
				return nil, err
			}
			dc.current[i] = s
		}
		for _, qs := range ps.Queue {
			s, err := restore(qs)
			if err != nil {
				return nil, err
			}
			dc.queues[i].push(s)
		}
	}
	dc.demand = st.Demand
	// The overlay bypassed start/Complete/SetOffline, so the O(1)
	// counters are recomputed from the restored truth, and any
	// incremental ordering derived from the pre-restore state is
	// invalid — signal a full rebuild through the dirty overflow.
	dc.nBusy, dc.nOffline = 0, 0
	for i := range dc.current {
		if dc.current[i] != nil {
			dc.nBusy++
		}
		if dc.offline[i] {
			dc.nOffline++
		}
	}
	dc.ResetFairDirty()
	dc.fairDirtyOverflow = true
	// The caller typically restores voltage-regime state (profiling
	// knowledge, fault overrides) after this overlay, so any draw
	// memoized before or during the restore could be stale.
	dc.InvalidateAllPower()
	return slices, nil
}
