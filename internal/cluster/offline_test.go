package cluster

import (
	"math"
	"testing"

	"iscope/internal/units"
	"iscope/internal/workload"
)

func TestSetOfflineLifecycle(t *testing.T) {
	dc := testDC(t, 3)
	top := dc.PowerModel().Table.Top()

	if err := dc.SetOffline(0, 115); err != nil {
		t.Fatal(err)
	}
	if !dc.Procs[0].Offline() {
		t.Fatal("processor not marked offline")
	}
	if dc.OfflineCount() != 1 {
		t.Fatalf("offline count = %d, want 1", dc.OfflineCount())
	}
	if math.Abs(float64(dc.Demand())-115) > 1e-9 {
		t.Fatalf("demand = %v, want 115 W profiling draw", dc.Demand())
	}
	if !math.IsInf(float64(dc.AvailableAt(0, 0)), 1) {
		t.Fatal("offline processor should be unavailable")
	}

	// Double-offline rejected.
	if err := dc.SetOffline(0, 115); err == nil {
		t.Fatal("re-offlining accepted")
	}
	// Busy processor rejected.
	s := NewSlice(job(1, 100, 1), 1, top)
	dc.Enqueue(s, 0)
	if err := dc.SetOffline(1, 115); err == nil {
		t.Fatal("busy processor taken offline")
	}
	// Negative draw rejected.
	if err := dc.SetOffline(2, -5); err == nil {
		t.Fatal("negative draw accepted")
	}

	// Work arriving for the offline processor queues instead of starting.
	q := NewSlice(job(2, 50, 1), 0, top)
	if started := dc.Enqueue(q, 10); started != nil {
		t.Fatal("slice started on an offline processor")
	}
	if dc.Procs[0].QueueLen() != 1 {
		t.Fatal("slice not queued on offline processor")
	}

	// Going online releases the queue and drops the profiling draw.
	started := dc.SetOnline(0, 20)
	if started != q {
		t.Fatal("SetOnline did not start the queued slice")
	}
	if dc.Procs[0].Offline() || dc.OfflineCount() != 0 {
		t.Fatal("processor still offline after SetOnline")
	}
	// Demand: slice on proc 0 + slice on proc 1, no profiling draw.
	want := float64(dc.ProcPower(0, top) + dc.ProcPower(1, top))
	if math.Abs(float64(dc.Demand())-want) > 1e-6 {
		t.Fatalf("demand = %v, want %v", dc.Demand(), want)
	}
	// SetOnline on an online processor is a no-op.
	if dc.SetOnline(0, 25) != nil {
		t.Fatal("SetOnline on online processor returned a slice")
	}
}

func TestSetOnlineWithEmptyQueue(t *testing.T) {
	dc := testDC(t, 1)
	if err := dc.SetOffline(0, 200); err != nil {
		t.Fatal(err)
	}
	if got := dc.SetOnline(0, 5); got != nil {
		t.Fatal("empty-queue SetOnline returned a slice")
	}
	if math.Abs(float64(dc.Demand())) > 1e-9 {
		t.Fatalf("demand = %v after online, want 0", dc.Demand())
	}
}

func TestSetOfflineRejectedWithQueuedWork(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	dc.Enqueue(NewSlice(job(1, 100, 1), 0, top), 0)
	dc.Enqueue(NewSlice(job(2, 100, 1), 0, top), 0)
	dc.Complete(0, 100) // second slice now running, queue empty
	dc.Enqueue(NewSlice(job(3, 100, 1), 0, top), 100)
	if err := dc.SetOffline(0, 115); err == nil {
		t.Fatal("processor with queued work taken offline")
	}
}

func TestOfflineDuringDrainKeepsUtilBooks(t *testing.T) {
	// Profiling time must not count as utilization (the paper's wear
	// metric tracks service work).
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	_ = dc.SetOffline(0, 115)
	_ = dc.SetOnline(0, units.Hours(2))
	if dc.Procs[0].UtilTime() != 0 {
		t.Fatalf("profiling time leaked into UtilTime: %v", dc.Procs[0].UtilTime())
	}
	s := NewSlice(&workload.Job{ID: 9, Procs: 1, Runtime: 100, Boundness: 1}, 0, top)
	dc.Enqueue(s, units.Hours(2))
	dc.Complete(0, s.Finish)
	if math.Abs(float64(dc.Procs[0].UtilTime())-100) > 1e-9 {
		t.Fatalf("UtilTime = %v, want 100", dc.Procs[0].UtilTime())
	}
}
