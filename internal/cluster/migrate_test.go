package cluster

import (
	"math"
	"testing"

	"iscope/internal/units"
	"iscope/internal/workload"
)

func TestUnqueueAndMigrate(t *testing.T) {
	dc := testDC(t, 2)
	top := dc.PowerModel().Table.Top()
	a := NewSlice(job(1, 100, 1), 0, top)
	b := NewSlice(&workload.Job{ID: 2, Procs: 1, Runtime: 50, Boundness: 1, Deadline: 120}, 0, top)
	dc.Enqueue(a, 0) // runs
	dc.Enqueue(b, 0) // queued behind a, would finish at 150 > deadline 120

	// Queue estimate sees b starting at a's finish.
	var est units.Seconds
	count := 0
	dc.QueueEstimates(func(s *Slice, start units.Seconds) {
		if s == b {
			est = start
		}
		count++
	})
	if count != 1 || est != 100 {
		t.Fatalf("QueueEstimates: count=%d est=%v, want 1 slice at 100", count, est)
	}

	// Running/done slices cannot be unqueued.
	if dc.Unqueue(a) {
		t.Fatal("unqueued a running slice")
	}

	// Migrate b to the idle processor 1; it starts immediately.
	started, err := dc.Migrate(b, 1, top, 10)
	if err != nil {
		t.Fatal(err)
	}
	if started != b || !b.Running() || b.ProcID != 1 {
		t.Fatalf("migration did not start b on proc 1: %+v", b)
	}
	if math.Abs(float64(b.Finish-60)) > 1e-9 {
		t.Fatalf("migrated finish = %v, want 60", b.Finish)
	}
	// Source queue drained and backlog cleared.
	if dc.Procs[0].QueueLen() != 0 {
		t.Fatal("source queue still holds the migrated slice")
	}
	if got := dc.AvailableAt(0, 10); got != a.Finish {
		t.Fatalf("source availability %v, want %v (backlog cleared)", got, a.Finish)
	}
	// Migrating a non-queued slice errors.
	if _, err := dc.Migrate(b, 0, top, 20); err == nil {
		t.Fatal("migrated a running slice")
	}
}

func TestMigrateToBusyProcQueues(t *testing.T) {
	dc := testDC(t, 2)
	top := dc.PowerModel().Table.Top()
	dc.Enqueue(NewSlice(job(1, 100, 1), 0, top), 0)
	dc.Enqueue(NewSlice(job(2, 100, 1), 1, top), 0)
	q := NewSlice(job(3, 50, 1), 0, top)
	dc.Enqueue(q, 0)
	started, err := dc.Migrate(q, 1, 2, 5) // new level too
	if err != nil {
		t.Fatal(err)
	}
	if started != nil {
		t.Fatal("migration to a busy processor should queue, not start")
	}
	if q.ProcID != 1 || q.AssignedLevel != 2 {
		t.Fatalf("migration did not retarget: %+v", q)
	}
	if dc.Procs[1].QueueLen() != 1 {
		t.Fatal("target queue empty after migration")
	}
	// Target availability includes the migrated backlog at its new level.
	want := dc.Procs[1].Current().Finish + dc.SliceDuration(q, 2)
	if got := dc.AvailableAt(1, 5); math.Abs(float64(got-want)) > 1e-9 {
		t.Fatalf("target availability %v, want %v", got, want)
	}
}

func TestQueuedSlicesAndOfflineEstimates(t *testing.T) {
	dc := testDC(t, 2)
	top := dc.PowerModel().Table.Top()
	_ = dc.SetOffline(0, 115)
	q := NewSlice(&workload.Job{ID: 1, Procs: 1, Runtime: 50, Boundness: 1, Deadline: 500}, 0, top)
	dc.Enqueue(q, 0) // queues behind the profiling session
	buf := dc.QueuedSlices(nil)
	if len(buf) != 1 || buf[0] != q {
		t.Fatalf("QueuedSlices = %v", buf)
	}
	sawInf := false
	dc.QueueEstimates(func(s *Slice, start units.Seconds) {
		if s == q && math.IsInf(float64(start), 1) {
			sawInf = true
		}
	})
	if !sawInf {
		t.Fatal("slice behind a profiling session should estimate +Inf start")
	}
}
