package cluster

import (
	"runtime"
	"testing"
)

// The slice queue must not pin Slice memory after draining: every
// vacated slot is nil-ed, and a queue that shrank far below a past
// burst's high-water mark releases the oversized backing array on the
// next compaction. At million-processor scale a leaked backing array
// per queue is gigabytes.

func TestSliceQueueReleasesDrainedPointers(t *testing.T) {
	var q sliceQueue
	for i := 0; i < 100; i++ {
		q.push(&Slice{Serial: i})
	}
	for i := 0; i < 100; i++ {
		q.popFront()
	}
	for i, s := range q.buf[:cap(q.buf)] {
		if s != nil {
			t.Fatalf("drained queue still holds a slice at slot %d", i)
		}
	}

	// removeAt and reset must nil their vacated slots too.
	q.push(&Slice{Serial: 0})
	q.push(&Slice{Serial: 1})
	q.removeAt(1)
	if got := q.buf[:cap(q.buf)][1]; got != nil {
		t.Fatal("removeAt left a live pointer in the vacated slot")
	}
	q.reset()
	for i, s := range q.buf[:cap(q.buf)] {
		if s != nil {
			t.Fatalf("reset left a live pointer at slot %d", i)
		}
	}
}

func TestSliceQueueShrinksAfterBurst(t *testing.T) {
	var q sliceQueue
	// A burst grows the backing array...
	for i := 0; i < 1024; i++ {
		q.push(&Slice{Serial: i})
	}
	burstCap := cap(q.buf)
	// ...then the queue drains to a trickle.
	for q.len() > 2 {
		q.popFront()
	}
	// Steady-state pushes/pops eventually wrap the head to the end of
	// the backing array; the compaction there must move to a smaller
	// array instead of recycling the burst-sized one.
	for i := 0; i < 4*burstCap; i++ {
		q.push(&Slice{Serial: i})
		q.popFront()
	}
	if cap(q.buf) >= burstCap {
		t.Fatalf("queue still pins the burst-sized backing array: cap %d (burst %d)", cap(q.buf), burstCap)
	}
	if q.len() != 2 {
		t.Fatalf("live count changed during shrink: %d", q.len())
	}
}

func TestSliceQueueDrainedSlicesAreCollectable(t *testing.T) {
	var q sliceQueue
	collected := make(chan struct{}, 1)
	func() {
		s := &Slice{Serial: 7}
		runtime.SetFinalizer(s, func(*Slice) { close(collected) })
		q.push(s)
		q.push(&Slice{Serial: 8}) // keep the queue non-empty
		q.popFront()
	}()
	for i := 0; i < 50; i++ {
		runtime.GC()
		select {
		case <-collected:
			return
		default:
		}
	}
	t.Fatal("popped slice was never collected: the queue still references it")
}
