package cluster

import (
	"math"
	"testing"

	"iscope/internal/power"
	"iscope/internal/units"
	"iscope/internal/variation"
	"iscope/internal/workload"
)

func testDC(t *testing.T, n int) *Datacenter {
	t.Helper()
	m, err := variation.NewModel(variation.DefaultConfig(123))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := power.NewModel(power.DefaultTable())
	if err != nil {
		t.Fatal(err)
	}
	volt := func(id, l int) units.Volts { return pm.Table.Levels[l].Vnom }
	dc, err := New(m.GenerateFleet(n), pm, volt, power.DefaultCOP)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func job(id int, runtime units.Seconds, gamma float64) *workload.Job {
	return &workload.Job{ID: id, Procs: 1, Runtime: runtime, Boundness: gamma, Deadline: 1e12}
}

func TestNewValidation(t *testing.T) {
	pm, _ := power.NewModel(power.DefaultTable())
	volt := func(id, l int) units.Volts { return 1 }
	if _, err := New(nil, pm, volt, 2.5); err == nil {
		t.Error("expected error for empty fleet")
	}
	m, _ := variation.NewModel(variation.DefaultConfig(1))
	chips := m.GenerateFleet(2)
	if _, err := New(chips, pm, nil, 2.5); err == nil {
		t.Error("expected error for nil voltage fn")
	}
	if _, err := New(chips, pm, volt, 0); err == nil {
		t.Error("expected error for zero COP")
	}
}

func TestEnqueueIdleStartsImmediately(t *testing.T) {
	dc := testDC(t, 4)
	top := dc.PowerModel().Table.Top()
	s := NewSlice(job(1, 100, 1), 0, top)
	started := dc.Enqueue(s, 0)
	if started != s {
		t.Fatal("idle processor did not start the slice")
	}
	if !s.Running() {
		t.Fatal("slice not marked running")
	}
	if s.Finish != 100 {
		t.Fatalf("finish = %v, want 100 (top level, gamma 1)", s.Finish)
	}
	if dc.Demand() <= 0 {
		t.Fatal("demand not raised by running slice")
	}
	if dc.BusyCount() != 1 {
		t.Fatalf("busy count = %d, want 1", dc.BusyCount())
	}
}

func TestEnqueueBusyQueues(t *testing.T) {
	dc := testDC(t, 2)
	top := dc.PowerModel().Table.Top()
	a := NewSlice(job(1, 100, 1), 0, top)
	b := NewSlice(job(2, 50, 1), 0, top)
	dc.Enqueue(a, 0)
	if started := dc.Enqueue(b, 10); started != nil {
		t.Fatal("second slice should queue, not start")
	}
	if dc.Procs[0].QueueLen() != 1 {
		t.Fatalf("queue len = %d, want 1", dc.Procs[0].QueueLen())
	}
	// Available: a finishes at 100, plus 50 backlog.
	if got := dc.AvailableAt(0, 10); math.Abs(float64(got-150)) > 1e-9 {
		t.Fatalf("AvailableAt = %v, want 150", got)
	}
}

func TestCompleteStartsNext(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	a := NewSlice(job(1, 100, 1), 0, top)
	b := NewSlice(job(2, 50, 1), 0, top)
	dc.Enqueue(a, 0)
	dc.Enqueue(b, 0)
	next := dc.Complete(0, 100)
	if next != b {
		t.Fatal("Complete did not start the queued slice")
	}
	if !a.Done() || a.Running() {
		t.Fatal("finished slice state wrong")
	}
	if b.Finish != 150 {
		t.Fatalf("next finish = %v, want 150", b.Finish)
	}
	if got := dc.Procs[0].UtilTime(); got != 100 {
		t.Fatalf("UtilTime = %v, want 100", got)
	}
	// Complete the second too; demand should return to zero.
	if dc.Complete(0, 150) != nil {
		t.Fatal("no third slice expected")
	}
	if math.Abs(float64(dc.Demand())) > 1e-9 {
		t.Fatalf("demand = %v after all work done, want 0", dc.Demand())
	}
	if dc.Procs[0].UtilTime() != 150 {
		t.Fatalf("UtilTime = %v, want 150", dc.Procs[0].UtilTime())
	}
}

func TestCompleteIdleReturnsNil(t *testing.T) {
	dc := testDC(t, 1)
	if dc.Complete(0, 10) != nil {
		t.Fatal("Complete on idle processor should return nil")
	}
}

func TestSetLevelRetimesCompletion(t *testing.T) {
	dc := testDC(t, 1)
	tbl := dc.PowerModel().Table
	top := tbl.Top()
	// gamma=1, runtime 100 at top (2 GHz). At level 0 (750 MHz) the full
	// job takes 100*2/0.75 = 266.67 s.
	s := NewSlice(job(1, 100, 1), 0, top)
	dc.Enqueue(s, 0)
	gen := s.Gen
	// Halfway through, drop to the bottom level.
	dc.SetLevel(s, 0, 50)
	if s.Gen == gen {
		t.Fatal("generation must bump on level change")
	}
	if math.Abs(s.Remaining()-0.5) > 1e-9 {
		t.Fatalf("remaining = %v, want 0.5", s.Remaining())
	}
	want := 50 + 0.5*100*2/0.75
	if math.Abs(float64(s.Finish)-want) > 1e-9 {
		t.Fatalf("retimed finish = %v, want %v", s.Finish, want)
	}
	// Raising back at t=100: remaining = 0.5 - 50/266.67 = 0.3125.
	dc.SetLevel(s, top, 100)
	wantRem := 0.5 - 50/(100*2/0.75)
	if math.Abs(s.Remaining()-wantRem) > 1e-9 {
		t.Fatalf("remaining = %v, want %v", s.Remaining(), wantRem)
	}
	wantFinish := 100 + wantRem*100
	if math.Abs(float64(s.Finish)-wantFinish) > 1e-9 {
		t.Fatalf("finish = %v, want %v", s.Finish, wantFinish)
	}
}

func TestSetLevelChangesDemand(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	s := NewSlice(job(1, 100, 1), 0, top)
	dc.Enqueue(s, 0)
	before := dc.Demand()
	dc.SetLevel(s, 0, 10)
	after := dc.Demand()
	if after >= before {
		t.Fatalf("demand did not drop on DVFS down: %v -> %v", before, after)
	}
	want := dc.ProcPower(0, 0)
	if math.Abs(float64(after-want)) > 1e-9 {
		t.Fatalf("demand = %v, want proc power %v", after, want)
	}
}

func TestSetLevelNoOpWhenNotRunning(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	s := NewSlice(job(1, 100, 1), 0, top)
	dc.SetLevel(s, 0, 10) // not enqueued
	if s.Level != top || s.Gen != 0 {
		t.Fatal("SetLevel mutated a non-running slice")
	}
}

func TestFinishAtLevelPrediction(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	s := NewSlice(job(1, 100, 1), 0, top)
	dc.Enqueue(s, 0)
	pred := dc.FinishAtLevel(s, 0, 50)
	want := units.Seconds(50 + 0.5*100*2/0.75)
	if math.Abs(float64(pred-want)) > 1e-9 {
		t.Fatalf("FinishAtLevel = %v, want %v", pred, want)
	}
	// Prediction must not mutate.
	if s.Level != top || math.Abs(s.Remaining()-1) > 1e-12 {
		t.Fatal("FinishAtLevel mutated the slice")
	}
	// Prediction at the same level equals current finish.
	same := dc.FinishAtLevel(s, top, 50)
	if math.Abs(float64(same-s.Finish)) > 1e-9 {
		t.Fatalf("same-level prediction %v != finish %v", same, s.Finish)
	}
}

func TestDemandMatchesSumOfProcPower(t *testing.T) {
	dc := testDC(t, 10)
	top := dc.PowerModel().Table.Top()
	var want float64
	for i := 0; i < 10; i += 2 {
		s := NewSlice(job(i, 100, 0.8), i, top)
		dc.Enqueue(s, 0)
		want += float64(dc.ProcPower(i, top))
	}
	if math.Abs(float64(dc.Demand())-want) > 1e-6 {
		t.Fatalf("demand = %v, want %v", dc.Demand(), want)
	}
	if dc.BusyCount() != 5 {
		t.Fatalf("busy = %d, want 5", dc.BusyCount())
	}
}

func TestRunningSlicesReuse(t *testing.T) {
	dc := testDC(t, 5)
	top := dc.PowerModel().Table.Top()
	for i := 0; i < 3; i++ {
		dc.Enqueue(NewSlice(job(i, 100, 1), i, top), 0)
	}
	buf := make([]*Slice, 0, 8)
	got := dc.RunningSlices(buf)
	if len(got) != 3 {
		t.Fatalf("running = %d, want 3", len(got))
	}
	got2 := dc.RunningSlices(got)
	if len(got2) != 3 {
		t.Fatalf("reused buffer returned %d, want 3", len(got2))
	}
}

func TestUtilTimesIncludeInFlight(t *testing.T) {
	dc := testDC(t, 2)
	top := dc.PowerModel().Table.Top()
	dc.Enqueue(NewSlice(job(1, 100, 1), 0, top), 0)
	ut := dc.UtilTimes(40)
	if math.Abs(float64(ut[0]-40)) > 1e-9 {
		t.Fatalf("in-flight util = %v, want 40", ut[0])
	}
	if ut[1] != 0 {
		t.Fatalf("idle proc util = %v, want 0", ut[1])
	}
}

func TestCoolingIncludedInProcPower(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	ch := dc.Procs[0].Chip
	cpu := dc.PowerModel().CPUPower(ch.Alpha, ch.Beta, top, dc.PowerModel().Table.Levels[top].Vnom)
	want := power.WithCooling(cpu, power.DefaultCOP)
	if math.Abs(float64(dc.ProcPower(0, top)-want)) > 1e-9 {
		t.Fatalf("ProcPower = %v, want %v (with cooling)", dc.ProcPower(0, top), want)
	}
}

func TestMemoryBoundSliceUnaffectedByLevel(t *testing.T) {
	dc := testDC(t, 1)
	s := NewSlice(job(1, 100, 0), 0, dc.PowerModel().Table.Top())
	dc.Enqueue(s, 0)
	dc.SetLevel(s, 0, 30)
	if math.Abs(float64(s.Finish)-100) > 1e-9 {
		t.Fatalf("gamma=0 slice finish = %v, want 100 regardless of level", s.Finish)
	}
}

func TestNewWithCOPsValidation(t *testing.T) {
	m, _ := variation.NewModel(variation.DefaultConfig(5))
	chips := m.GenerateFleet(3)
	pm, _ := power.NewModel(power.DefaultTable())
	volt := func(id, l int) units.Volts { return pm.Table.Levels[l].Vnom }
	if _, err := NewWithCOPs(chips, pm, volt, []float64{2.5, 2.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewWithCOPs(chips, pm, volt, []float64{2.5, 0, 2.5}); err == nil {
		t.Error("zero COP accepted")
	}
	dc, err := NewWithCOPs(chips, pm, volt, []float64{1.0, 2.5, 3.5})
	if err != nil {
		t.Fatal(err)
	}
	// Per-proc cooling differs: same chip power, different totals.
	p0 := float64(dc.ProcPower(0, 0))
	cpu0 := float64(pm.CPUPower(chips[0].Alpha, chips[0].Beta, 0, volt(0, 0)))
	if math.Abs(p0-cpu0*2) > 1e-9 { // COP 1 -> multiplier 2
		t.Fatalf("COP 1 proc power = %v, want %v", p0, cpu0*2)
	}
}

// The ProcPower memo must be transparent: same values as direct
// computation, stale values dropped on invalidation.
func TestProcPowerCacheInvalidation(t *testing.T) {
	m, err := variation.NewModel(variation.DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	pm, err := power.NewModel(power.DefaultTable())
	if err != nil {
		t.Fatal(err)
	}
	// A mutable voltage regime standing in for profiling updates and
	// fault overrides.
	bump := make([]units.Volts, 4)
	volt := func(id, l int) units.Volts { return pm.Table.Levels[l].Vnom + bump[id] }
	dc, err := New(m.GenerateFleet(4), pm, volt, power.DefaultCOP)
	if err != nil {
		t.Fatal(err)
	}
	direct := func(id, l int) units.Watts {
		ch := dc.Procs[id].Chip
		return power.WithCooling(pm.CPUPower(ch.Alpha, ch.Beta, l, volt(id, l)), dc.cops[id])
	}
	for id := 0; id < 4; id++ {
		for l := 0; l < pm.Table.NumLevels(); l++ {
			if got, want := dc.ProcPower(id, l), direct(id, l); got != want {
				t.Fatalf("ProcPower(%d,%d) = %v, want %v", id, l, got, want)
			}
		}
	}
	// Regime change without invalidation: memo intentionally serves the
	// old value (that is the contract callers must uphold).
	bump[2] = 0.05
	stale := dc.ProcPower(2, 0)
	if stale == direct(2, 0) {
		t.Fatal("test regime change had no effect; cannot exercise invalidation")
	}
	dc.InvalidatePower(2)
	if got, want := dc.ProcPower(2, 0), direct(2, 0); got != want {
		t.Fatalf("after InvalidatePower: ProcPower = %v, want %v", got, want)
	}
	// Other processors untouched by the per-id invalidation.
	if got, want := dc.ProcPower(1, 0), direct(1, 0); got != want {
		t.Fatalf("ProcPower(1,0) = %v, want %v", got, want)
	}
	bump[1] = 0.02
	dc.InvalidateAllPower()
	if got, want := dc.ProcPower(1, 0), direct(1, 0); got != want {
		t.Fatalf("after InvalidateAllPower: ProcPower = %v, want %v", got, want)
	}
}

func TestUtilTimesIntoMatchesUtilTimes(t *testing.T) {
	dc := testDC(t, 4)
	top := dc.PowerModel().Table.Top()
	dc.Enqueue(NewSlice(job(1, 100, 1), 0, top), 0)
	dc.Enqueue(NewSlice(job(2, 50, 0.5), 2, top), 5)
	dc.Complete(0, 100)
	want := dc.UtilTimes(120)
	buf := make([]units.Seconds, 0, 4)
	got := dc.UtilTimesInto(buf, 120)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UtilTimesInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		got = dc.UtilTimesInto(got, 120)
	})
	if allocs != 0 {
		t.Fatalf("UtilTimesInto allocated %v per run, want 0", allocs)
	}
}

// Arena-built slices behave exactly like NewSlice ones and stay
// distinct across chunk boundaries.
func TestSliceArenaEquivalentToNewSlice(t *testing.T) {
	var a SliceArena
	j := job(1, 100, 0.7)
	got := a.New(j, 3, 2)
	want := NewSlice(j, 3, 2)
	if *got != *want {
		t.Fatalf("arena slice = %+v, want %+v", *got, *want)
	}
	seen := make(map[*Slice]bool)
	for i := 0; i < 3*arenaChunk; i++ {
		s := a.New(j, i, 1)
		if seen[s] {
			t.Fatal("arena handed out the same slice twice")
		}
		seen[s] = true
		if s.ProcID != i || s.Remaining() != 1 || s.Running() || s.Done() {
			t.Fatalf("arena slice %d corrupt: %+v", i, *s)
		}
	}
	// Earlier chunks stay intact after later allocations.
	if got.ProcID != 3 || got.AssignedLevel != 2 {
		t.Fatalf("first arena slice mutated: %+v", *got)
	}
}
