package cluster

import (
	"math"
	"testing"
)

// TestPreemptRequeueResume walks the crash path: a running slice is
// preempted mid-flight, requeued with its remaining work, the node is
// forced offline and later returned; the slice must resume from where
// it stopped and the demand books must balance at every step.
func TestPreemptRequeueResume(t *testing.T) {
	dc := testDC(t, 2)
	top := dc.PowerModel().Table.Top()
	s := NewSlice(job(1, 1000, 1), 0, top)
	if dc.Enqueue(s, 0) != s {
		t.Fatal("slice did not start")
	}
	draw := dc.Demand()
	gen := s.Gen

	pre := dc.Preempt(0, 400)
	if pre != s {
		t.Fatal("preempt did not return the running slice")
	}
	if s.Running() || s.Done() {
		t.Fatal("preempted slice still running or done")
	}
	if s.Gen == gen {
		t.Fatal("preempt did not bump generation")
	}
	if got := s.Remaining(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("remaining %v after 400/1000 s, want 0.6", got)
	}
	if dc.Demand() != 0 {
		t.Fatalf("demand %v after preempt, want 0", dc.Demand())
	}
	if dc.Procs[0].UtilTime() != 400 {
		t.Fatalf("util time %v, want 400", dc.Procs[0].UtilTime())
	}

	dc.Requeue(s)
	if dc.Procs[0].QueueLen() != 1 {
		t.Fatal("requeue did not queue the slice")
	}
	if err := dc.ForceOffline(0, 50); err != nil {
		t.Fatal(err)
	}
	if dc.Demand() != 50 {
		t.Fatalf("offline draw not booked: demand %v", dc.Demand())
	}
	// Requeue must never start the slice, even on the idle node 1.
	if dc.Procs[0].Current() != nil {
		t.Fatal("requeued slice started while offline")
	}

	started := dc.SetOnline(0, 1000)
	if started != s {
		t.Fatal("repair did not restart the requeued slice")
	}
	if dc.Demand() != draw {
		t.Fatalf("demand %v after resume, want %v", dc.Demand(), draw)
	}
	if got, want := float64(s.Finish), 1000+0.6*1000; math.Abs(got-want) > 1e-6 {
		t.Fatalf("resumed finish %v, want %v", got, want)
	}
	dc.Complete(0, s.Finish)
	if !s.Done() {
		t.Fatal("slice did not complete after resume")
	}
	if got, want := float64(dc.Procs[0].UtilTime()), 1000.0; math.Abs(got-want) > 1e-6 {
		t.Fatalf("total util %v, want %v (work conserved across preemption)", got, want)
	}
}

// TestRequeueFrontOrdering: a preempted slice resumes before slices
// that were already waiting.
func TestRequeueFrontOrdering(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	first := NewSlice(job(1, 100, 1), 0, top)
	waiting := NewSlice(job(2, 100, 1), 0, top)
	dc.Enqueue(first, 0)
	dc.Enqueue(waiting, 0)
	pre := dc.Preempt(0, 50)
	dc.Requeue(pre)
	if dc.queues[0].at(0) != pre {
		t.Fatal("preempted slice not at queue front")
	}
}

// TestResetWork discards progress only on preempted slices.
func TestResetWork(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	s := NewSlice(job(1, 100, 1), 0, top)
	dc.Enqueue(s, 0)
	s.ResetWork() // running: no-op
	pre := dc.Preempt(0, 25)
	if math.Abs(pre.Remaining()-0.75) > 1e-9 {
		t.Fatalf("remaining %v, want 0.75", pre.Remaining())
	}
	pre.ResetWork()
	if pre.Remaining() != 1 {
		t.Fatalf("remaining %v after reset, want 1", pre.Remaining())
	}
}

// TestForceOfflineGuards: running or already-offline nodes refuse.
func TestForceOfflineGuards(t *testing.T) {
	dc := testDC(t, 2)
	top := dc.PowerModel().Table.Top()
	dc.Enqueue(NewSlice(job(1, 100, 1), 0, top), 0)
	if err := dc.ForceOffline(0, 0); err == nil {
		t.Fatal("forced a running processor offline")
	}
	if err := dc.ForceOffline(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := dc.ForceOffline(1, 0); err == nil {
		t.Fatal("double offline accepted")
	}
	if dc.Preempt(1, 0) != nil {
		t.Fatal("preempt on idle processor returned a slice")
	}
}
