// Package cluster models the datacenter: a fleet of processors (the
// schedulable "CPUs" of the paper), per-processor FIFO task queues,
// task-slice execution with DVFS-aware progress tracking, utilization
// accounting for the lifetime-balancing study, and incremental
// aggregate power bookkeeping.
//
// A job requesting N CPUs becomes N parallel slices, one per chosen
// processor; each slice carries the job's runtime (at the top DVFS
// level), CPU-boundness and deadline. A processor executes its slices
// FIFO. Power-matching may change a running slice's DVFS level mid-
// flight; progress is tracked as a remaining-work fraction so level
// changes re-time the completion correctly.
package cluster

import (
	"fmt"
	"math"

	"iscope/internal/power"
	"iscope/internal/units"
	"iscope/internal/variation"
	"iscope/internal/workload"
)

// VoltageFn returns the supply voltage a processor is operated at for a
// DVFS level. It encodes the knowledge regime: factory bin voltage for
// Bin schemes, scanned MinVdd plus guardband for Scan schemes.
type VoltageFn func(procID, level int) units.Volts

// Slice is one processor's share of a gang job.
type Slice struct {
	Job    *workload.Job
	ProcID int
	// Serial is a scheduler-assigned identity, unique per run, that
	// survives checkpointing. (ProcID, Gen) pairs cannot identify a
	// slice across a snapshot: generations reset on fresh slices, so a
	// restored completion event could falsely match a different slice.
	Serial int
	// AssignedLevel is the DVFS level the scheduler chose; power
	// matching may run the slice below it temporarily, never above.
	AssignedLevel int
	// Level is the current operating level while running.
	Level int

	remaining  float64 // fraction of work left, 1 -> 0
	lastUpdate units.Seconds
	running    bool
	done       bool

	// Finish is the estimated completion time while running.
	Finish units.Seconds
	// Gen invalidates stale completion events after a level change.
	Gen int

	// draw is the power the slice is booked at in the aggregate demand
	// while running. It is captured at start/level-change time so that
	// knowledge updates mid-run (online profiling) cannot unbalance the
	// incremental bookkeeping.
	draw units.Watts
}

// Running reports whether the slice is currently executing.
func (s *Slice) Running() bool { return s.running }

// Done reports whether the slice has completed.
func (s *Slice) Done() bool { return s.done }

// Remaining returns the fraction of work left.
func (s *Slice) Remaining() float64 { return s.remaining }

// Processor is one schedulable CPU. It is a thin view over the
// datacenter's structure-of-arrays state: the mutable fields (running
// slice, queue, utilization, offline flags) live in flat parallel
// slices on Datacenter, indexed by ID, so fleet-order walks and the
// sharded kernels stream contiguous memory instead of chasing
// per-processor pointers. The view keeps the familiar accessor API for
// tests, checkpoint codecs and cold paths.
type Processor struct {
	ID   int
	Chip *variation.Chip
	dc   *Datacenter
}

// Offline reports whether the processor is isolated from service.
func (p *Processor) Offline() bool { return p.dc.offline[p.ID] }

// Current returns the running slice, nil when idle.
func (p *Processor) Current() *Slice { return p.dc.current[p.ID] }

// QueueLen returns the number of waiting slices.
func (p *Processor) QueueLen() int { return p.dc.queues[p.ID].len() }

// UtilTime returns the accumulated busy time — the lifetime-wear proxy
// of the paper's Figure 9 — not counting any in-flight busy span (see
// Datacenter.UtilAt for that).
func (p *Processor) UtilTime() units.Seconds { return p.dc.utilTime[p.ID] }

// sliceQueue is a FIFO of waiting slices with amortized allocation-free
// push and pop. Popping advances a head index instead of re-slicing;
// the vacated front capacity is reclaimed by compaction on a later
// push. The append(queue[1:], ...) idiom this replaces lost the front
// capacity forever, so every processor queue kept re-allocating its
// backing array for the whole run — the single largest allocation
// source in the simulation hot path.
type sliceQueue struct {
	buf  []*Slice
	head int
}

func (q *sliceQueue) len() int { return len(q.buf) - q.head }

// items returns the live window for iteration. The returned slice is
// valid only until the next queue mutation.
func (q *sliceQueue) items() []*Slice { return q.buf[q.head:] }

func (q *sliceQueue) at(i int) *Slice { return q.buf[q.head+i] }

func (q *sliceQueue) push(s *Slice) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		live := len(q.buf) - q.head
		if cap(q.buf) >= 64 && live*4 <= cap(q.buf) {
			// The queue drained far below its high-water mark: move the
			// live window to a smaller backing array so one past burst
			// doesn't pin a fleet-scale allocation for the whole run.
			nb := make([]*Slice, live, max(2*live, 16))
			copy(nb, q.buf[q.head:])
			q.buf = nb
		} else {
			n := copy(q.buf, q.buf[q.head:])
			for i := n; i < len(q.buf); i++ {
				q.buf[i] = nil // release for GC
			}
			q.buf = q.buf[:n]
		}
		q.head = 0
	}
	q.buf = append(q.buf, s)
}

func (q *sliceQueue) popFront() *Slice {
	s := q.buf[q.head]
	q.buf[q.head] = nil // release for GC
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return s
}

func (q *sliceQueue) pushFront(s *Slice) {
	if q.head > 0 {
		q.head--
		q.buf[q.head] = s
		return
	}
	q.buf = append(q.buf, nil)
	copy(q.buf[1:], q.buf)
	q.buf[0] = s
}

// removeAt deletes the i-th waiting slice, preserving queue order.
func (q *sliceQueue) removeAt(i int) {
	idx := q.head + i
	copy(q.buf[idx:], q.buf[idx+1:])
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
}

func (q *sliceQueue) reset() {
	for i := range q.buf {
		q.buf[i] = nil
	}
	q.buf = q.buf[:0]
	q.head = 0
}

// Datacenter is the simulated facility. Mutable per-processor state is
// held in flat parallel arrays indexed by processor ID (structure of
// arrays): the hot kernels — utilization fills, availability
// snapshots, running-slice collection, queue estimates — walk these
// arrays linearly, and the PR-5 shard ranges become contiguous array
// windows. Processor is a view over the same arrays.
type Datacenter struct {
	Procs []*Processor

	chips []*variation.Chip

	// Structure-of-arrays processor state, all indexed by processor ID.
	current     []*Slice        // running slice, nil when idle
	utilTime    []units.Seconds // accumulated busy time (wear proxy)
	busySince   []units.Seconds // start of the in-flight busy span
	backlog     []units.Seconds // summed durations of queued slices
	offline     []bool          // isolated from service (profiling)
	offlineDraw []units.Watts   // draw while isolated
	queues      []sliceQueue    // per-processor FIFO of waiting slices

	// fairDirty collects the processors whose utilization key (busy
	// state or accumulated UtilTime) changed since the last
	// ResetFairDirty — exactly the start/Complete/Preempt transitions.
	// The scheduler's incremental least-used order repairs only these;
	// fairDirtyOverflow reports that the set overflowed its bound (or
	// was never tracked, e.g. right after construction or a state
	// restore) and a full rebuild is required.
	fairDirty         []int32
	fairDirtyMark     []bool
	fairDirtyOverflow bool

	pm   *power.Model
	volt VoltageFn
	cops []float64 // per-processor cooling coefficient

	demand units.Watts // aggregate draw including cooling

	// nBusy and nOffline are maintained incrementally at every state
	// transition so BusyCount/OfflineCount are O(1) — they gate
	// per-tick decisions (profiling admission, parallel-kernel
	// heuristics) and an O(procs) scan there is measurable at fleet
	// scale. RestoreState recomputes them from the overlay.
	nBusy    int
	nOffline int

	// Memoized ProcPower, indexed id*nLevels+level. ProcPower is a pure
	// function of (id, level) between voltage-regime changes — the volt
	// function reads profiling knowledge and fault overrides that only
	// move at discrete events — so callers must InvalidatePower whenever
	// the regime for a processor changes. The cache is pure memoization:
	// it never alters a computed value, so results stay bit-identical.
	nLevels   int
	pcache    []units.Watts
	pcacheOK  []bool
	pcacheOff bool
}

// New builds a datacenter of len(chips) processors with a uniform
// cooling coefficient.
func New(chips []*variation.Chip, pm *power.Model, volt VoltageFn, cop float64) (*Datacenter, error) {
	if cop <= 0 {
		return nil, fmt.Errorf("cluster: COP must be positive, got %v", cop)
	}
	cops := make([]float64, len(chips))
	for i := range cops {
		cops[i] = cop
	}
	return NewWithCOPs(chips, pm, volt, cops)
}

// NewWithCOPs builds a datacenter with per-processor cooling
// coefficients — cold-aisle and hot-aisle nodes cool at different
// efficiency, the COP spread Greenberg et al. measured across real
// facilities (Section IV.A: "COP follows normal distribution between
// [0.6, 3.5]").
func NewWithCOPs(chips []*variation.Chip, pm *power.Model, volt VoltageFn, cops []float64) (*Datacenter, error) {
	if len(chips) == 0 {
		return nil, fmt.Errorf("cluster: empty fleet")
	}
	if volt == nil {
		return nil, fmt.Errorf("cluster: nil voltage function")
	}
	if len(cops) != len(chips) {
		return nil, fmt.Errorf("cluster: %d COPs for %d chips", len(cops), len(chips))
	}
	for i, c := range cops {
		if c <= 0 {
			return nil, fmt.Errorf("cluster: processor %d has non-positive COP %v", i, c)
		}
	}
	nLevels := pm.Table.NumLevels()
	n := len(chips)
	dc := &Datacenter{
		Procs:       make([]*Processor, n),
		chips:       append([]*variation.Chip(nil), chips...),
		current:     make([]*Slice, n),
		utilTime:    make([]units.Seconds, n),
		busySince:   make([]units.Seconds, n),
		backlog:     make([]units.Seconds, n),
		offline:     make([]bool, n),
		offlineDraw: make([]units.Watts, n),
		queues:      make([]sliceQueue, n),
		// The dirty bound matches the scheduler's repair threshold:
		// past ~n/8 changed processors a full rebuild is cheaper than
		// a merge, so tracking further ids buys nothing.
		fairDirty:         make([]int32, 0, n/8+64),
		fairDirtyMark:     make([]bool, n),
		fairDirtyOverflow: true, // no order built yet: first pass is full
		pm:                pm,
		volt:              volt,
		cops:              append([]float64(nil), cops...),
		nLevels:           nLevels,
		pcache:            make([]units.Watts, n*nLevels),
		pcacheOK:          make([]bool, n*nLevels),
	}
	// The views live in one contiguous backing array; they are
	// immutable (ID, Chip, dc) so pointers stay valid for the
	// datacenter's lifetime.
	backing := make([]Processor, n)
	for i, ch := range chips {
		backing[i] = Processor{ID: i, Chip: ch, dc: dc}
		dc.Procs[i] = &backing[i]
	}
	return dc, nil
}

// markFair records that processor id's utilization key changed. O(1),
// allocation-free, deduplicating; past the capacity bound it degrades
// to the overflow flag (full rebuild).
func (dc *Datacenter) markFair(id int) {
	if dc.fairDirtyOverflow || dc.fairDirtyMark[id] {
		return
	}
	if len(dc.fairDirty) == cap(dc.fairDirty) {
		dc.fairDirtyOverflow = true
		return
	}
	dc.fairDirtyMark[id] = true
	dc.fairDirty = append(dc.fairDirty, int32(id))
}

// FairDirty returns the processors whose utilization key changed since
// the last ResetFairDirty, and whether the set overflowed (meaning the
// list is incomplete and callers must rebuild from scratch). The slice
// is owned by the datacenter; it is valid until the next mutation.
func (dc *Datacenter) FairDirty() ([]int32, bool) {
	return dc.fairDirty, dc.fairDirtyOverflow
}

// ResetFairDirty empties the dirty set, typically right after a caller
// consumed it to repair its ordering.
func (dc *Datacenter) ResetFairDirty() {
	for _, id := range dc.fairDirty {
		dc.fairDirtyMark[id] = false
	}
	dc.fairDirty = dc.fairDirty[:0]
	dc.fairDirtyOverflow = false
}

// Demand returns the current aggregate power draw including cooling.
func (dc *Datacenter) Demand() units.Watts { return dc.demand }

// PowerModel returns the datacenter's power model.
func (dc *Datacenter) PowerModel() *power.Model { return dc.pm }

// ProcDraw returns the power processor id is currently booked at in
// the aggregate demand: its running slice's captured draw, its offline
// (profiling/repair) draw, or zero when idle. Summing ProcDraw over
// the fleet reproduces Demand exactly — it reads the same incremental
// bookkeeping — which is what lets a sensor layer aggregate true
// per-node power without a second accounting path.
func (dc *Datacenter) ProcDraw(id int) units.Watts {
	if dc.offline[id] {
		return dc.offlineDraw[id]
	}
	if cur := dc.current[id]; cur != nil {
		return cur.draw
	}
	return 0
}

// ProcPower returns the total draw (with cooling) of processor id
// running at the given level under the datacenter's voltage regime.
// Results are memoized per (id, level); see InvalidatePower.
func (dc *Datacenter) ProcPower(id, level int) units.Watts {
	idx := id*dc.nLevels + level
	if dc.pcacheOK[idx] {
		return dc.pcache[idx]
	}
	ch := dc.chips[id]
	cpu := dc.pm.CPUPower(ch.Alpha, ch.Beta, level, dc.volt(id, level))
	w := power.WithCooling(cpu, dc.cops[id])
	if !dc.pcacheOff {
		dc.pcache[idx] = w
		dc.pcacheOK[idx] = true
	}
	return w
}

// DisablePowerCache makes every ProcPower call recompute from the
// voltage regime. The reference (naive) scheduler path runs with the
// cache off so equivalence tests compare memoized draws against
// always-fresh ones — a missing invalidation then shows up as a
// divergence rather than being masked on both sides.
func (dc *Datacenter) DisablePowerCache() {
	dc.pcacheOff = true
	dc.InvalidateAllPower()
}

// InvalidatePower drops the memoized draws for one processor. Call it
// whenever the voltage regime for that processor changes: a profiling
// database update, a fault voltage override, a guardband fallback.
func (dc *Datacenter) InvalidatePower(id int) {
	lo := id * dc.nLevels
	for i := lo; i < lo+dc.nLevels; i++ {
		dc.pcacheOK[i] = false
	}
}

// InvalidateAllPower drops every memoized draw — the safe hammer for
// fleet-wide regime changes (e.g. a supply-voltage derating event).
func (dc *Datacenter) InvalidateAllPower() {
	for i := range dc.pcacheOK {
		dc.pcacheOK[i] = false
	}
}

// SliceDuration returns the slice's full execution time at level l.
func (dc *Datacenter) SliceDuration(s *Slice, l int) units.Seconds {
	return dc.pm.ExecTime(s.Job.Runtime, s.Job.Boundness, l)
}

// AvailableAt estimates when processor id can start a new slice: now if
// idle, otherwise the running slice's estimated finish plus the queued
// backlog. Offline (profiling) processors report +Inf. The estimate
// assumes current DVFS levels persist; power matching can shift it,
// which is exactly the estimation error a real scheduler lives with.
func (dc *Datacenter) AvailableAt(id int, now units.Seconds) units.Seconds {
	if dc.offline[id] {
		return units.Seconds(math.Inf(1))
	}
	cur := dc.current[id]
	if cur == nil {
		return now
	}
	return cur.Finish + dc.backlog[id]
}

// SetOffline isolates an idle, queue-free processor from service for
// profiling, drawing the given test power meanwhile. It reports an
// error if the processor is busy, queued-up or already offline —
// opportunistic profiling must only take truly idle nodes (Section
// III.C).
func (dc *Datacenter) SetOffline(id int, draw units.Watts) error {
	if dc.current[id] != nil || dc.queues[id].len() > 0 {
		return fmt.Errorf("cluster: processor %d is not idle", id)
	}
	return dc.ForceOffline(id, draw)
}

// ForceOffline isolates a processor even when slices are queued on it —
// crash repair and suspect-chip re-profiling cannot wait for the queue
// to drain. Queued slices stay put and start when the processor returns
// via SetOnline. The processor must not be running a slice (Preempt
// first) and must not already be offline.
func (dc *Datacenter) ForceOffline(id int, draw units.Watts) error {
	if dc.offline[id] {
		return fmt.Errorf("cluster: processor %d already offline", id)
	}
	if dc.current[id] != nil {
		return fmt.Errorf("cluster: processor %d is running a slice", id)
	}
	if draw < 0 {
		return fmt.Errorf("cluster: negative offline draw")
	}
	dc.offline[id] = true
	dc.offlineDraw[id] = draw
	dc.demand += draw
	dc.nOffline++
	return nil
}

// Preempt interrupts processor id's running slice: progress is
// advanced to now, the slice leaves the demand books and the busy-time
// accounting closes. The interrupted slice is returned (nil when idle)
// with its remaining-work fraction preserved, so a Requeue resumes it
// from where it stopped; its generation is bumped so the stale
// completion event dies. The processor is left idle — the caller
// decides whether to restart the queue or take the node offline.
func (dc *Datacenter) Preempt(id int, now units.Seconds) *Slice {
	s := dc.current[id]
	if s == nil {
		return nil
	}
	dc.progress(s, now)
	dc.demand -= s.draw
	s.draw = 0
	s.running = false
	s.Gen++
	dc.utilTime[id] += now - dc.busySince[id]
	dc.current[id] = nil
	dc.nBusy--
	dc.markFair(id)
	return s
}

// Requeue puts a preempted slice at the front of its processor's queue
// so it resumes before later arrivals. Unlike Enqueue it never starts
// the slice, even on an idle processor — the caller sequences restarts
// (typically via SetOnline after a repair).
func (dc *Datacenter) Requeue(s *Slice) {
	if s.running || s.done {
		return
	}
	dc.queues[s.ProcID].pushFront(s)
	dc.backlog[s.ProcID] += dc.SliceDuration(s, s.AssignedLevel)
}

// ResetWork discards a preempted slice's progress so it re-executes
// from scratch — the price of a margin violation on a falsely-passed
// chip. No-op on running or completed slices.
func (s *Slice) ResetWork() {
	if s.running || s.done {
		return
	}
	s.remaining = 1
}

// SetOnline returns a profiled processor to service and starts the
// first queued slice if any arrived meanwhile (the returned slice's
// completion must then be scheduled by the caller).
func (dc *Datacenter) SetOnline(id int, now units.Seconds) *Slice {
	if !dc.offline[id] {
		return nil
	}
	dc.offline[id] = false
	dc.demand -= dc.offlineDraw[id]
	dc.offlineDraw[id] = 0
	dc.nOffline--
	if dc.current[id] != nil || dc.queues[id].len() == 0 {
		return nil
	}
	next := dc.queues[id].popFront()
	dc.backlog[id] -= dc.SliceDuration(next, next.AssignedLevel)
	if dc.backlog[id] < 0 {
		dc.backlog[id] = 0
	}
	dc.start(id, next, now)
	return next
}

// Unqueue removes a not-yet-started slice from its processor's queue
// so it can be migrated elsewhere ("load migration between nodes" —
// one of the green-datacenter levers the paper's Section I lists). It
// reports whether the slice was found; running or completed slices
// cannot be unqueued.
func (dc *Datacenter) Unqueue(s *Slice) bool {
	if s.running || s.done {
		return false
	}
	id := s.ProcID
	for i, q := range dc.queues[id].items() {
		if q == s {
			dc.queues[id].removeAt(i)
			dc.backlog[id] -= dc.SliceDuration(s, s.AssignedLevel)
			if dc.backlog[id] < 0 {
				dc.backlog[id] = 0
			}
			return true
		}
	}
	return false
}

// QueuedSlices appends every waiting (not started) slice across the
// fleet to dst and returns it.
func (dc *Datacenter) QueuedSlices(dst []*Slice) []*Slice {
	dst = dst[:0]
	for i := range dc.queues {
		dst = append(dst, dc.queues[i].items()...)
	}
	return dst
}

// Migrate moves a queued slice to another processor at a (possibly
// new) assigned DVFS level, starting it immediately if that processor
// is idle (the returned slice is then non-nil and its completion must
// be scheduled).
func (dc *Datacenter) Migrate(s *Slice, toProc, level int, now units.Seconds) (*Slice, error) {
	if !dc.Unqueue(s) {
		return nil, fmt.Errorf("cluster: slice of job %d is not queued", s.Job.ID)
	}
	s.ProcID = toProc
	s.AssignedLevel = level
	s.Level = level
	return dc.Enqueue(s, now), nil
}

// QueueEstimates calls fn for every queued slice with its estimated
// start time under the current DVFS levels. Slices queued behind a
// profiling session (offline processor) get a +Inf estimate.
func (dc *Datacenter) QueueEstimates(fn func(s *Slice, estStart units.Seconds)) {
	dc.QueueEstimatesShard(0, len(dc.Procs), fn)
}

// OfflineCount returns the number of processors currently isolated.
func (dc *Datacenter) OfflineCount() int { return dc.nOffline }

// NewSlice creates an unstarted slice of job j on processor procID at
// the given assigned level.
func NewSlice(j *workload.Job, procID, level int) *Slice {
	return &Slice{
		Job:           j,
		ProcID:        procID,
		AssignedLevel: level,
		Level:         level,
		remaining:     1,
	}
}

// Enqueue appends the slice to its processor's queue. If the processor
// is idle the slice starts immediately and is returned (its completion
// must then be scheduled by the caller); otherwise nil is returned.
func (dc *Datacenter) Enqueue(s *Slice, now units.Seconds) *Slice {
	id := s.ProcID
	if dc.current[id] == nil && !dc.offline[id] {
		dc.start(id, s, now)
		return s
	}
	dc.queues[id].push(s)
	dc.backlog[id] += dc.SliceDuration(s, s.AssignedLevel)
	return nil
}

func (dc *Datacenter) start(id int, s *Slice, now units.Seconds) {
	dc.current[id] = s
	dc.nBusy++
	dc.busySince[id] = now
	s.running = true
	s.lastUpdate = now
	s.Level = s.AssignedLevel
	s.Finish = now + units.Seconds(s.remaining*float64(dc.SliceDuration(s, s.Level)))
	s.draw = dc.ProcPower(id, s.Level)
	dc.demand += s.draw
	dc.markFair(id)
}

// Complete finishes processor id's running slice and starts the next
// queued one, if any. It returns the newly started slice (nil when the
// queue is empty). The caller is responsible for only invoking this at
// the slice's current Finish time with a matching generation.
func (dc *Datacenter) Complete(id int, now units.Seconds) *Slice {
	s := dc.current[id]
	if s == nil {
		return nil
	}
	dc.demand -= s.draw
	s.draw = 0
	s.running = false
	s.done = true
	s.remaining = 0
	dc.utilTime[id] += now - dc.busySince[id]
	dc.current[id] = nil
	dc.nBusy--
	dc.markFair(id)
	if dc.queues[id].len() == 0 {
		return nil
	}
	next := dc.queues[id].popFront()
	dc.backlog[id] -= dc.SliceDuration(next, next.AssignedLevel)
	if dc.backlog[id] < 0 {
		dc.backlog[id] = 0
	}
	dc.start(id, next, now)
	return next
}

// SetLevel changes a running slice's DVFS level at time now, updating
// remaining work, finish estimate, generation and aggregate demand. It
// is a no-op if the slice is not running or already at the level.
func (dc *Datacenter) SetLevel(s *Slice, level int, now units.Seconds) {
	if !s.running || level == s.Level {
		return
	}
	dc.demand -= s.draw
	dc.progress(s, now)
	s.Level = level
	s.Gen++
	s.Finish = now + units.Seconds(s.remaining*float64(dc.SliceDuration(s, level)))
	s.draw = dc.ProcPower(s.ProcID, level)
	dc.demand += s.draw
}

// FinishAtLevel predicts the slice's completion time if switched to the
// given level at time now (without applying the change).
func (dc *Datacenter) FinishAtLevel(s *Slice, level int, now units.Seconds) units.Seconds {
	rem := s.remaining
	if s.running {
		dur := float64(dc.SliceDuration(s, s.Level))
		if dur > 0 {
			rem -= float64(now-s.lastUpdate) / dur
		}
		if rem < 0 {
			rem = 0
		}
	}
	return now + units.Seconds(rem*float64(dc.SliceDuration(s, level)))
}

// progress advances the slice's remaining-work fraction to time now.
func (dc *Datacenter) progress(s *Slice, now units.Seconds) {
	dur := float64(dc.SliceDuration(s, s.Level))
	if dur > 0 {
		s.remaining -= float64(now-s.lastUpdate) / dur
	}
	if s.remaining < 0 {
		s.remaining = 0
	}
	s.lastUpdate = now
}

// QueueSlack returns the minimum deadline slack among processor id's
// queued (not yet started) slices, given the current estimated drain
// order: how much the running slice's completion may be delayed before
// some queued slice's estimated completion crosses its deadline.
// +Inf when the queue is empty or deadline-free.
func (dc *Datacenter) QueueSlack(id int, now units.Seconds) units.Seconds {
	slackMin := units.Seconds(math.Inf(1))
	cur := dc.current[id]
	if cur == nil {
		return slackMin
	}
	t := cur.Finish
	for _, q := range dc.queues[id].items() {
		t += dc.SliceDuration(q, q.AssignedLevel)
		if q.Job.Deadline > 0 {
			if s := q.Job.Deadline - t; s < slackMin {
				slackMin = s
			}
		}
	}
	return slackMin
}

// RunningSlices appends every currently executing slice to dst and
// returns it, avoiding per-tick allocation in the matching loop.
func (dc *Datacenter) RunningSlices(dst []*Slice) []*Slice {
	dst = dst[:0]
	for _, cur := range dc.current {
		if cur != nil {
			dst = append(dst, cur)
		}
	}
	return dst
}

// CurrentView returns the running-slice array indexed by processor ID
// (nil entries are idle processors). Read-only: callers must not
// modify it. It exists so fleet-order scans stream one flat array
// instead of dereferencing every Processor view.
func (dc *Datacenter) CurrentView() []*Slice { return dc.current }

// IsBusy reports whether processor id is running a slice.
func (dc *Datacenter) IsBusy(id int) bool { return dc.current[id] != nil }

// UtilTimeOf returns processor id's accumulated busy time, not
// counting any in-flight busy span.
func (dc *Datacenter) UtilTimeOf(id int) units.Seconds { return dc.utilTime[id] }

// UtilAt returns processor id's busy time at now — exactly the value
// UtilTimesInto writes for that processor, computed with the identical
// float expression so orderings built from either agree bit-for-bit.
func (dc *Datacenter) UtilAt(id int, now units.Seconds) units.Seconds {
	u := dc.utilTime[id]
	if dc.current[id] != nil {
		u += now - dc.busySince[id]
	}
	return u
}

// UtilTimes returns each processor's accumulated busy time, adding the
// in-flight busy span for processors currently running.
func (dc *Datacenter) UtilTimes(now units.Seconds) []units.Seconds {
	return dc.UtilTimesInto(make([]units.Seconds, 0, len(dc.Procs)), now)
}

// UtilTimesInto is UtilTimes into a reused buffer, for per-sync callers
// that must not allocate.
func (dc *Datacenter) UtilTimesInto(dst []units.Seconds, now units.Seconds) []units.Seconds {
	dst = dst[:0]
	for id := range dc.utilTime {
		u := dc.utilTime[id]
		if dc.current[id] != nil {
			u += now - dc.busySince[id]
		}
		dst = append(dst, u)
	}
	return dst
}

// UtilShard fills dst[id] for id in [lo, hi) with each processor's
// busy time at now — the shard-range form of UtilTimesInto. Distinct
// ranges touch disjoint regions of dst, so shards may fill
// concurrently; each entry is exactly the value UtilTimesInto writes.
func (dc *Datacenter) UtilShard(dst []units.Seconds, now units.Seconds, lo, hi int) {
	for id := lo; id < hi; id++ {
		u := dc.utilTime[id]
		if dc.current[id] != nil {
			u += now - dc.busySince[id]
		}
		dst[id] = u
	}
}

// AvailShard fills dst[id] for id in [lo, hi) with AvailableAt(id,
// now) — a structure-of-arrays snapshot of the fleet's availability,
// safe to fill concurrently across disjoint ranges.
func (dc *Datacenter) AvailShard(dst []units.Seconds, now units.Seconds, lo, hi int) {
	for id := lo; id < hi; id++ {
		dst[id] = dc.AvailableAt(id, now)
	}
}

// RunningShard appends the running slices of processors [lo, hi) to
// dst in processor order and returns it — the shard-range form of
// RunningSlices, for per-worker collection buffers.
func (dc *Datacenter) RunningShard(dst []*Slice, lo, hi int) []*Slice {
	for id := lo; id < hi; id++ {
		if cur := dc.current[id]; cur != nil {
			dst = append(dst, cur)
		}
	}
	return dst
}

// QueueEstimatesShard is QueueEstimates restricted to processors
// [lo, hi): fn sees exactly the (slice, estimated start) pairs the
// full walk reports for those processors, in the same order. fn must
// only touch caller-shard state when ranges run concurrently.
func (dc *Datacenter) QueueEstimatesShard(lo, hi int, fn func(s *Slice, estStart units.Seconds)) {
	for id := lo; id < hi; id++ {
		if dc.queues[id].len() == 0 {
			continue
		}
		t := units.Seconds(math.Inf(1))
		if cur := dc.current[id]; cur != nil {
			t = cur.Finish
		}
		for _, q := range dc.queues[id].items() {
			fn(q, t)
			t += dc.SliceDuration(q, q.AssignedLevel)
		}
	}
}

// LiveSlices counts the fleet's in-flight work: slices currently
// running and slices waiting in queues. Together they must equal the
// scheduler's outstanding placements (the no-slice-leak invariant the
// online monitor checks every tick).
func (dc *Datacenter) LiveSlices() (running, queued int) {
	for id := range dc.current {
		if dc.current[id] != nil {
			running++
		}
		queued += dc.queues[id].len()
	}
	return running, queued
}

// BusyCount returns the number of processors currently running a slice.
func (dc *Datacenter) BusyCount() int { return dc.nBusy }

// SliceArena bulk-allocates slices in fixed chunks so the placement
// loop does not pay one heap allocation per slice. Slices are never
// recycled within a run — a pointer handed out stays valid and uniquely
// owned for the run's lifetime, exactly as an individually allocated
// slice would — so the arena trades bounded memory growth for zero
// aliasing risk. Chunks whose slices all become unreachable are
// collected normally.
type SliceArena struct {
	chunk []Slice
}

const arenaChunk = 256

// New returns a fresh unstarted slice, equivalent to NewSlice.
func (a *SliceArena) New(j *workload.Job, procID, level int) *Slice {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]Slice, 0, arenaChunk)
	}
	a.chunk = a.chunk[:len(a.chunk)+1]
	s := &a.chunk[len(a.chunk)-1]
	*s = Slice{
		Job:           j,
		ProcID:        procID,
		AssignedLevel: level,
		Level:         level,
		remaining:     1,
	}
	return s
}
