package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"iscope/internal/rng"
	"iscope/internal/units"
	"iscope/internal/workload"
)

// TestDemandInvariantUnderRandomOps drives a datacenter through random
// enqueue / complete / retime sequences and checks after every step
// that the incrementally maintained aggregate demand equals the sum of
// running processors' power — the invariant the energy accounting
// rests on.
func TestDemandInvariantUnderRandomOps(t *testing.T) {
	dc := testDC(t, 12)
	top := dc.PowerModel().Table.Top()
	now := units.Seconds(0)
	var slices []*Slice
	nextID := 0

	checkDemand := func() bool {
		var want float64
		for _, p := range dc.Procs {
			if p.Current() != nil {
				want += float64(dc.ProcPower(p.ID, p.Current().Level))
			}
		}
		return math.Abs(float64(dc.Demand())-want) < 1e-6*(want+1)
	}

	f := func(ops []uint16) bool {
		for _, op := range ops {
			now += units.Seconds(1 + op%97)
			switch op % 3 {
			case 0: // enqueue a new slice
				nextID++
				j := &workload.Job{ID: nextID, Procs: 1,
					Runtime: units.Seconds(50 + op%1000), Boundness: 0.5 + float64(op%50)/100}
				lvl := int(op) % (top + 1)
				s := NewSlice(j, int(op)%len(dc.Procs), lvl)
				dc.Enqueue(s, now)
				slices = append(slices, s)
			case 1: // complete whatever is due on a random processor
				p := dc.Procs[int(op)%len(dc.Procs)]
				if cur := p.Current(); cur != nil {
					// Jump the clock to its finish and complete it.
					if cur.Finish > now {
						now = cur.Finish
					}
					dc.Complete(p.ID, now)
				}
			case 2: // retime a random running slice
				p := dc.Procs[int(op)%len(dc.Procs)]
				if cur := p.Current(); cur != nil {
					dc.SetLevel(cur, int(op/3)%(top+1), now)
				}
			}
			if !checkDemand() {
				return false
			}
			if dc.Demand() < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEverySliceCompletesExactlyOnce drains a randomly built workload
// to completion and verifies slice lifecycle invariants.
func TestEverySliceCompletesExactlyOnce(t *testing.T) {
	dc := testDC(t, 6)
	top := dc.PowerModel().Table.Top()
	r := rng.Named(101, "drain")
	var all []*Slice
	now := units.Seconds(0)
	for i := 0; i < 200; i++ {
		j := &workload.Job{ID: i, Procs: 1, Runtime: units.Seconds(10 + r.IntN(500)), Boundness: 1}
		s := NewSlice(j, r.IntN(6), r.IntN(top+1))
		dc.Enqueue(s, now)
		all = append(all, s)
	}
	// Drain: repeatedly complete the earliest-finishing running slice.
	for {
		var next *Slice
		for _, p := range dc.Procs {
			if c := p.Current(); c != nil && (next == nil || c.Finish < next.Finish) {
				next = c
			}
		}
		if next == nil {
			break
		}
		now = next.Finish
		dc.Complete(next.ProcID, now)
	}
	for i, s := range all {
		if !s.Done() {
			t.Fatalf("slice %d never completed", i)
		}
		if s.Running() {
			t.Fatalf("slice %d done but still running", i)
		}
		if s.Remaining() != 0 {
			t.Fatalf("slice %d done with remaining %v", i, s.Remaining())
		}
	}
	if dc.BusyCount() != 0 || math.Abs(float64(dc.Demand())) > 1e-6 {
		t.Fatalf("drained datacenter busy=%d demand=%v", dc.BusyCount(), dc.Demand())
	}
	// Utilization conservation: total busy time equals the sum of each
	// slice's actual execution span at its (constant) level.
	var wantBusy float64
	for _, s := range all {
		wantBusy += float64(dc.SliceDuration(s, s.Level))
	}
	var gotBusy float64
	for _, u := range dc.UtilTimes(now) {
		gotBusy += float64(u)
	}
	if math.Abs(gotBusy-wantBusy) > 1e-6*wantBusy {
		t.Fatalf("utilization books differ: got %v, want %v", gotBusy, wantBusy)
	}
}

// TestQueueSlackMatchesManualComputation cross-checks QueueSlack
// against a direct walk.
func TestQueueSlackMatchesManualComputation(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	if s := dc.QueueSlack(0, 0); !math.IsInf(float64(s), 1) {
		t.Fatalf("idle processor slack = %v, want +Inf", s)
	}
	a := NewSlice(&workload.Job{ID: 1, Procs: 1, Runtime: 100, Boundness: 1, Deadline: 1e9}, 0, top)
	b := NewSlice(&workload.Job{ID: 2, Procs: 1, Runtime: 50, Boundness: 1, Deadline: 400}, 0, top)
	c := NewSlice(&workload.Job{ID: 3, Procs: 1, Runtime: 50, Boundness: 1, Deadline: 230}, 0, top)
	dc.Enqueue(a, 0)
	dc.Enqueue(b, 0)
	dc.Enqueue(c, 0)
	// a finishes at 100; b at 150 (slack 250); c at 200 (slack 30).
	if got := dc.QueueSlack(0, 0); math.Abs(float64(got-30)) > 1e-9 {
		t.Fatalf("queue slack = %v, want 30", got)
	}
	// No-deadline queue entries are ignored.
	d := NewSlice(&workload.Job{ID: 4, Procs: 1, Runtime: 10, Boundness: 1}, 0, top)
	dc.Enqueue(d, 0)
	if got := dc.QueueSlack(0, 0); math.Abs(float64(got-30)) > 1e-9 {
		t.Fatalf("slack changed by deadline-free entry: %v", got)
	}
}

// TestAvailableAtMatchesRealizedStart verifies the queue estimate is
// exact when no retiming happens.
func TestAvailableAtMatchesRealizedStart(t *testing.T) {
	dc := testDC(t, 1)
	top := dc.PowerModel().Table.Top()
	a := NewSlice(&workload.Job{ID: 1, Procs: 1, Runtime: 100, Boundness: 1}, 0, top)
	b := NewSlice(&workload.Job{ID: 2, Procs: 1, Runtime: 70, Boundness: 0.5}, 0, top)
	dc.Enqueue(a, 0)
	dc.Enqueue(b, 0)
	predicted := dc.AvailableAt(0, 0)
	dc.Complete(0, a.Finish)
	dc.Complete(0, b.Finish)
	// After both complete, the processor frees exactly at the predicted
	// time (b's finish = a's finish + b's duration = predicted).
	if math.Abs(float64(b.Finish-predicted)) > 1e-9 {
		t.Fatalf("realized availability %v != predicted %v", b.Finish, predicted)
	}
}
