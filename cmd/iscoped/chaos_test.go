package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bufio"

	"iscope/internal/rng"
	"iscope/internal/scheduler/testgrid"
	"iscope/internal/service"
)

// minKills is how many SIGKILLs each chaos run must land mid-stream
// before the workload is allowed to finish.
const minKills = 10

// chaosSeeds reads the seed list from ISCOPED_CHAOS_SEEDS (comma
// separated), defaulting to one seed for the ordinary test run; CI
// fans wider.
func chaosSeeds(t *testing.T) []uint64 {
	t.Helper()
	env := os.Getenv("ISCOPED_CHAOS_SEEDS")
	if env == "" {
		env = "1"
	}
	var seeds []uint64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("ISCOPED_CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// proc is one daemon process under chaos supervision.
type proc struct {
	cmd  *exec.Cmd
	done chan error
}

// launchProc starts the daemon and blocks until it advertises its
// listening address (or dies trying).
func launchProc(bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{cmd: cmd, done: make(chan error, 1)}
	listening := make(chan struct{}, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "iscoped: listening on ") {
				select {
				case listening <- struct{}{}:
				default:
				}
			}
		}
		p.done <- cmd.Wait()
	}()
	select {
	case <-listening:
		return p, nil
	case err := <-p.done:
		return nil, fmt.Errorf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("daemon never advertised an address")
	}
}

// kill SIGKILLs the daemon — no warning, no flush, no shutdown hook —
// and waits for the process to be fully gone.
func (p *proc) kill() {
	_ = p.cmd.Process.Kill()
	<-p.done
}

// freePort reserves a loopback port and releases it for the daemon to
// bind: the chaos client needs one stable URL across restarts.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestDaemonCrashRecovery is the crash-injection harness: a daemon is
// SIGKILLed at randomized points while a retrying client streams a
// job workload into it, a supervisor restarts it each time, and the
// finished run must be byte-identical — final result JSON and
// snapshot envelope — to an uninterrupted in-process run of the same
// stream, with every job applied exactly once. Submissions ride on
// stable idempotency keys, so a batch whose response died with the
// daemon is retried without being double-applied; the test even
// replays every batch a second time to prove the dedup window holds
// across restarts.
func TestDaemonCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs processes")
	}
	bin := buildDaemon(t)
	for _, seed := range chaosSeeds(t) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, bin, seed)
		})
	}
}

func runChaos(t *testing.T, bin string, seed uint64) {
	stateDir := t.TempDir()
	addr := freePort(t)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	spec := service.TenantSpec{
		Name: "chaos", Scheme: "ScanFair", Seed: 21 + seed, FleetSeed: 5, Procs: 8,
		Wind: &service.WindSpec{Seed: 7, Days: 4, MeanFrac: 0.5},
	}
	jobs := testgrid.Jobs(t, 96, 30, 0.3).Jobs
	subs := make([]service.JobSubmission, len(jobs))
	for i, j := range jobs {
		subs[i] = service.JobSubmission{
			ID: j.ID, At: float64(j.Submit), Runtime: float64(j.Runtime),
			Procs: j.Procs, Boundness: j.Boundness, Deadline: float64(j.Deadline),
		}
	}
	const batchSize = 8
	var batches [][]service.JobSubmission
	for i := 0; i < len(subs); i += batchSize {
		end := min(i+batchSize, len(subs))
		batches = append(batches, subs[i:end])
	}

	// Supervisor: launch, sleep a randomized 30-150ms, SIGKILL, loop —
	// until the workload reports done; then keep the last daemon alive
	// for the finish phase.
	var (
		kills    atomic.Int64
		stop     = make(chan struct{}) // workload → supervisor: stop killing
		finalUp  = make(chan struct{}) // supervisor → workload: stable daemon is up
		testDone = make(chan struct{})
		supErr   = make(chan error, 1)
	)
	defer close(testDone)
	go func() {
		r := rng.Named(seed, "chaos-kill-delay")
		for {
			p, err := launchProc(bin, "-addr", addr, "-state", stateDir, "-wal-fsync", "always")
			if err != nil {
				supErr <- err
				return
			}
			select {
			case <-stop:
				close(finalUp)
				<-testDone
				p.kill()
				return
			case <-time.After(time.Duration(30+r.IntN(120)) * time.Millisecond):
				p.kill()
				kills.Add(1)
			}
		}
	}()

	c := &service.Client{
		BaseURL:    "http://" + addr,
		Retries:    80,
		Backoff:    20 * time.Millisecond,
		MaxBackoff: 250 * time.Millisecond,
		RetrySeed:  seed + 1,
	}
	if _, err := c.CreateTenant(ctx, spec); err != nil {
		t.Fatalf("create under chaos: %v", err)
	}
	// Stream passes until enough kills landed. Pass 0 applies every
	// batch; later passes retry the same idempotency keys, which must
	// all dedup to the original outcome no matter how many crashes
	// separate them from pass 0.
	streamPass := func(throttle time.Duration) {
		for i, batch := range batches {
			if throttle > 0 {
				// Pace the first pass so the kills spread across the
				// fresh mutations, not just the dedup replays.
				time.Sleep(throttle)
			}
			key := fmt.Sprintf("chaos-batch-%d", i)
			if _, err := c.SubmitIdem(ctx, "chaos", key, batch); err != nil {
				t.Fatalf("submit batch %d: %v", i, err)
			}
			if i+1 < len(batches) {
				if to := batches[i+1][0].At - 1; to > 0 {
					if _, err := c.Advance(ctx, "chaos", to); err != nil {
						t.Fatalf("advance after batch %d: %v", i, err)
					}
				}
			}
			select {
			case err := <-supErr:
				t.Fatalf("supervisor: %v", err)
			default:
			}
		}
	}
	passes := 0
	for {
		throttle := time.Duration(0)
		if passes == 0 {
			throttle = 25 * time.Millisecond
		}
		streamPass(throttle)
		passes++
		if kills.Load() >= minKills {
			break
		}
		if ctx.Err() != nil {
			t.Fatalf("deadline after %d passes with only %d/%d kills", passes, kills.Load(), minKills)
		}
		// Let the killer catch up instead of hammering dedup hits.
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	select {
	case <-finalUp:
	case err := <-supErr:
		t.Fatalf("supervisor: %v", err)
	case <-ctx.Done():
		t.Fatal("timed out waiting for final daemon")
	}
	t.Logf("seed %d: survived %d kills over %d passes", seed, kills.Load(), passes)

	// Finish on the stable daemon and capture both artifacts.
	st, err := c.Status(ctx, "chaos")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Jobs != len(subs) {
		t.Fatalf("duplicate or lost jobs: daemon has %d, stream had %d", st.Jobs, len(subs))
	}
	if err := c.Seal(ctx, "chaos"); err != nil {
		t.Fatalf("seal: %v", err)
	}
	got, err := c.Result(ctx, "chaos")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	gotSnap, err := c.Snapshot(ctx, "chaos")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}

	// Uninterrupted in-process reference over the identical mutation
	// sequence (retries and dedup hits are not mutations).
	srv := service.New()
	defer srv.Close()
	ref := clientFor(t, srv)
	if _, err := ref.CreateTenant(ctx, spec); err != nil {
		t.Fatal(err)
	}
	for i, batch := range batches {
		if _, err := ref.Submit(ctx, "chaos", batch); err != nil {
			t.Fatalf("reference submit %d: %v", i, err)
		}
		if i+1 < len(batches) {
			if to := batches[i+1][0].At - 1; to > 0 {
				if _, err := ref.Advance(ctx, "chaos", to); err != nil {
					t.Fatalf("reference advance %d: %v", i, err)
				}
			}
		}
	}
	if err := ref.Seal(ctx, "chaos"); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Result(ctx, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := ref.Snapshot(ctx, "chaos")
	if err != nil {
		t.Fatal(err)
	}

	if gotJSON, wantJSON := marshal(t, got), marshal(t, want); !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("crash-recovered result diverged from uninterrupted run:\nchaos %s\nref   %s", gotJSON, wantJSON)
	}
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Errorf("crash-recovered snapshot diverged: %d vs %d bytes", len(gotSnap), len(wantSnap))
	}
	if got.JobsCompleted != len(subs) {
		t.Errorf("completed %d/%d jobs", got.JobsCompleted, len(subs))
	}
}
