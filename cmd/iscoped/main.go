// Command iscoped serves live, steppable green-datacenter simulations
// over an HTTP JSON API: create tenant simulations, stream job
// submissions into them, advance their virtual clocks, and read live
// state (clock, brownout stage, energy) — see internal/service for
// the endpoint table and DESIGN.md §8 for the wire contract.
//
// Usage:
//
//	iscoped -addr 127.0.0.1:8080
//	iscoped -addr 127.0.0.1:0 -state /var/lib/iscoped
//
// With -state, SIGINT/SIGTERM snapshots every tenant (simulation
// checkpoint + restart metadata) into the directory before exiting,
// and the next start restores them — a restarted daemon continues
// every stream bit-identically to an uninterrupted one. The daemon
// prints "iscoped: listening on http://HOST:PORT" once the socket is
// bound (so -addr :0 callers can discover the port).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iscope/internal/service"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		state = flag.String("state", "", "snapshot directory: restore tenants from it on start, save all tenants into it on SIGINT/SIGTERM")
	)
	flag.Parse()
	if err := run(*addr, *state); err != nil {
		fmt.Fprintf(os.Stderr, "iscoped: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, state string) error {
	srv := service.New()
	defer srv.Close()
	if state != "" {
		n, err := srv.LoadAll(state)
		if err != nil {
			return fmt.Errorf("restore from %s: %w", state, err)
		}
		fmt.Printf("iscoped: restored %d tenants from %s\n", n, state)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("iscoped: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Stop accepting requests, let in-flight ones finish, then persist
	// a consistent snapshot of every tenant.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if state != "" {
		if err := srv.SaveAll(state); err != nil {
			return err
		}
		fmt.Printf("iscoped: state saved to %s\n", state)
	}
	return nil
}
