// Command iscoped serves live, steppable green-datacenter simulations
// over an HTTP JSON API: create tenant simulations, stream job
// submissions into them, advance their virtual clocks, and read live
// state (clock, brownout stage, energy) — see internal/service for
// the endpoint table and DESIGN.md §8-§9 for the wire and durability
// contracts.
//
// Usage:
//
//	iscoped -addr 127.0.0.1:8080
//	iscoped -addr 127.0.0.1:0 -state /var/lib/iscoped -wal-fsync always
//
// With -state the daemon is crash-durable: every accepted mutation is
// appended to a per-tenant write-ahead journal before the response is
// sent, tenants are checkpointed on SIGINT/SIGTERM (and every
// -checkpoint-every while serving), and startup replays the journal
// suffix on top of the newest checkpoint — so even a kill -9 loses
// nothing, and a restarted daemon continues every stream
// bit-identically to an uninterrupted one. The daemon prints
// "iscoped: listening on http://HOST:PORT" once the socket is bound
// (so -addr :0 callers can discover the port).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iscope/internal/service"
	"iscope/internal/wal"
)

func main() {
	var (
		addr  = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		state = flag.String("state", "", "state directory: restore tenants (checkpoint + journal replay) on start, journal every mutation, checkpoint on SIGINT/SIGTERM")

		walFsync = flag.String("wal-fsync", "always", "journal fsync policy: always (fsync before every response), interval (bounded by -wal-sync-interval), off (OS decides)")
		walEvery = flag.Duration("wal-sync-interval", 100*time.Millisecond, "max fsync gap under -wal-fsync=interval")
		ckptEach = flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 disables; checkpoints compact the journals)")
		maxInfl  = flag.Int("max-inflight", 0, "max concurrently served requests; excess requests get 503 + Retry-After (0 = unbounded)")
	)
	flag.Parse()
	if err := run(*addr, *state, *walFsync, *walEvery, *ckptEach, *maxInfl); err != nil {
		fmt.Fprintf(os.Stderr, "iscoped: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, state, walFsync string, walEvery, ckptEach time.Duration, maxInflight int) error {
	policy, err := wal.ParseSyncPolicy(walFsync)
	if err != nil {
		return err
	}
	srv := service.NewWithOptions(service.Options{
		StateDir:     state,
		Sync:         policy,
		SyncInterval: walEvery,
		MaxInflight:  maxInflight,
	})
	defer srv.Close()
	if state != "" {
		n, err := srv.LoadAll(state)
		if err != nil {
			return fmt.Errorf("restore from %s: %w", state, err)
		}
		fmt.Printf("iscoped: restored %d tenants from %s\n", n, state)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("iscoped: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Real server timeouts: a client that dribbles its headers or
	// never drains its response cannot pin a connection (and its
	// in-flight slot) forever.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if state != "" && ckptEach > 0 {
		ticker = time.NewTicker(ckptEach)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case err := <-serveErr:
			return err
		case <-tick:
			if _, err := srv.Checkpoint(); err != nil {
				fmt.Fprintf(os.Stderr, "iscoped: periodic checkpoint: %v\n", err)
			}
		case <-ctx.Done():
			// Stop accepting requests, let in-flight ones finish, then
			// persist a consistent checkpoint of every tenant.
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			if state != "" {
				if err := srv.SaveAll(state); err != nil {
					return err
				}
				fmt.Printf("iscoped: state saved to %s\n", state)
			}
			return nil
		}
	}
}
