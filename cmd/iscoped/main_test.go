package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"iscope/internal/scheduler"
	"iscope/internal/scheduler/testgrid"
	"iscope/internal/service"
)

// buildDaemon compiles the iscoped binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "iscoped")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// lockedBuffer collects process output from the exec copier and the
// scanner goroutine without racing the test's failure messages.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon wraps one running iscoped process.
type daemon struct {
	cmd  *exec.Cmd
	url  string
	done chan error
	out  *lockedBuffer
}

// startDaemon launches the binary on a fresh loopback port and parses
// the advertised address from its stdout.
func startDaemon(t *testing.T, bin, stateDir string, extra ...string) *daemon {
	t.Helper()
	d := &daemon{out: &lockedBuffer{}}
	args := append([]string{"-addr", "127.0.0.1:0", "-state", stateDir}, extra...)
	d.cmd = exec.Command(bin, args...)
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d.cmd.Stderr = d.out
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			_ = d.cmd.Process.Kill()
		}
	})

	addr := make(chan string, 1)
	d.done = make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(d.out, line)
			if rest, ok := strings.CutPrefix(line, "iscoped: listening on "); ok {
				addr <- rest
			}
		}
		d.done <- d.cmd.Wait()
	}()
	select {
	case d.url = <-addr:
	case err := <-d.done:
		t.Fatalf("daemon exited before listening: %v\n%s", err, d.out.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never advertised an address\n%s", d.out.String())
	}
	return d
}

// terminate sends SIGTERM and waits for a clean exit (the daemon's
// snapshot-and-save path).
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, d.out.String())
		}
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		t.Fatalf("daemon ignored SIGTERM\n%s", d.out.String())
	}
}

// clientFor serves an in-process Server over a loopback listener so
// the uninterrupted reference run travels the same wire path.
func clientFor(t *testing.T, srv *service.Server) *service.Client {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &service.Client{BaseURL: ts.URL}
}

// TestDaemonRestartResume is the end-to-end satellite: a daemon on a
// loopback port receives a tenant and half its job stream, is
// SIGTERM-snapshotted mid-run, restarted from its state directory,
// fed the rest of the stream, and must report final metrics equal to
// an uninterrupted in-process run of the identical stream.
func TestDaemonRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and builds a binary")
	}
	bin := buildDaemon(t)
	stateDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := service.TenantSpec{
		Name: "e2e", Scheme: "ScanFair", Seed: 11, FleetSeed: 3, Procs: 8,
		Wind:       &service.WindSpec{Seed: 12, Days: 4, MeanFrac: 0.5},
		Invariants: true,
	}
	jobs := testgrid.Jobs(t, 80, 30, 0.3).Jobs
	subs := make([]service.JobSubmission, len(jobs))
	for i, j := range jobs {
		subs[i] = service.JobSubmission{
			ID: j.ID, At: float64(j.Submit), Runtime: float64(j.Runtime),
			Procs: j.Procs, Boundness: j.Boundness, Deadline: float64(j.Deadline),
		}
	}
	half := len(subs) / 2

	// Phase 1: create, stream the first half, advance into it, SIGTERM.
	d1 := startDaemon(t, bin, stateDir)
	c1 := &service.Client{BaseURL: d1.url}
	if _, err := c1.CreateTenant(ctx, spec); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := c1.Submit(ctx, "e2e", subs[:half]); err != nil {
		t.Fatalf("submit first half: %v", err)
	}
	if _, err := c1.Advance(ctx, "e2e", subs[half].At-1); err != nil {
		t.Fatalf("advance: %v", err)
	}
	mid, err := c1.Status(ctx, "e2e")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if mid.Jobs != half || mid.Sealed {
		t.Fatalf("pre-restart status: %+v", mid)
	}
	d1.terminate(t)
	if snaps, err := filepath.Glob(filepath.Join(stateDir, "e2e.*.ckpt")); err != nil || len(snaps) == 0 {
		t.Fatalf("SIGTERM left no snapshot (err %v)", err)
	}

	// Phase 2: restart from the state dir, stream the rest, finish.
	d2 := startDaemon(t, bin, stateDir)
	c2 := &service.Client{BaseURL: d2.url}
	restored, err := c2.Status(ctx, "e2e")
	if err != nil {
		t.Fatalf("restored status: %v", err)
	}
	if restored.Jobs != half || restored.Now != mid.Now {
		t.Fatalf("restore drifted: before %+v after %+v", mid, restored)
	}
	if _, err := c2.Submit(ctx, "e2e", subs[half:]); err != nil {
		t.Fatalf("submit second half: %v", err)
	}
	if err := c2.Seal(ctx, "e2e"); err != nil {
		t.Fatalf("seal: %v", err)
	}
	got, err := c2.Result(ctx, "e2e")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	final, err := c2.Status(ctx, "e2e")
	if err != nil {
		t.Fatalf("final status: %v", err)
	}
	if final.InvariantViolations != 0 || !final.Finished {
		t.Fatalf("final status: %+v", final)
	}
	d2.terminate(t)

	// Uninterrupted in-process reference over the identical stream.
	// JSON round-trips float64 exactly (shortest representation), so
	// byte-comparing the re-marshaled results is a bit-level check on
	// every metric the wire carries.
	srv := service.New()
	defer srv.Close()
	hclient := clientFor(t, srv)
	if _, err := hclient.CreateTenant(ctx, spec); err != nil {
		t.Fatal(err)
	}
	if _, err := hclient.Submit(ctx, "e2e", subs[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := hclient.Advance(ctx, "e2e", subs[half].At-1); err != nil {
		t.Fatal(err)
	}
	if _, err := hclient.Submit(ctx, "e2e", subs[half:]); err != nil {
		t.Fatal(err)
	}
	if err := hclient.Seal(ctx, "e2e"); err != nil {
		t.Fatal(err)
	}
	want, err := hclient.Result(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON := marshal(t, got)
	wantJSON := marshal(t, want)
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("daemon-restart result diverged from uninterrupted run:\ndaemon %s\nlocal  %s", gotJSON, wantJSON)
	}
	if got.JobsCompleted != len(subs) {
		t.Fatalf("completed %d/%d jobs", got.JobsCompleted, len(subs))
	}
}

func marshal(t *testing.T, res *scheduler.Result) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
