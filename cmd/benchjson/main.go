// Command benchjson converts `go test -bench -benchmem` output into a
// stable JSON summary, and gates changes against a committed baseline.
//
// Emit mode (default) reads raw benchmark output on stdin:
//
//	go test -run '^$' -bench . -benchmem -count 5 . | benchjson -o BENCH.json
//
// Gate mode compares stdin (raw output or a benchjson file) against a
// baseline JSON and exits non-zero on regression:
//
//	go test -run '^$' -bench . -benchmem -count 5 . |
//	    benchjson -baseline BENCH.json -max-ns-regress 0.10
//
// Repeated -count runs of one benchmark are aggregated by median
// (ns/op and B/op) — robust to a single noisy run — and by maximum
// (allocs/op), so an allocation that appears in any run is visible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one aggregated benchmark result. The two *Regress
// fields are only meaningful in a baseline file: when present they
// override the -max-ns-regress / -max-allocs-regress flags for that
// benchmark alone, so a noisy fleet-scale entry can carry a looser
// budget than the tight micro-benchmark default.
type Benchmark struct {
	Name             string   `json:"name"`
	Runs             int      `json:"runs"`
	NsPerOp          float64  `json:"ns_per_op"`
	BytesPerOp       float64  `json:"bytes_per_op"`
	AllocsPerOp      float64  `json:"allocs_per_op"`
	MaxNsRegress     *float64 `json:"max_ns_regress,omitempty"`
	MaxAllocsRegress *float64 `json:"max_allocs_regress,omitempty"`
	// SpeedupVsWorkers1 is computed, never hand-written: for a
	// benchmark named .../workers=N (N > 1) whose /workers=1 sibling
	// appears in the same document, it is sibling ns/op divided by this
	// benchmark's ns/op — above 1.0 means the parallel tier wins.
	// MinSpeedupVsWorkers1 is a baseline budget: with -enforce-speedup
	// the gate fails when the measured speedup falls below it. The
	// budget is only meaningful on multi-core runners, so CI passes the
	// flag conditionally on the runner's core count.
	SpeedupVsWorkers1    *float64 `json:"speedup_vs_workers1,omitempty"`
	MinSpeedupVsWorkers1 *float64 `json:"min_speedup_vs_workers1,omitempty"`
}

// File is the emitted document. Goos/Goarch/CPU are informational —
// they tell a reader which machine produced the numbers.
type File struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches one result row; the -N GOMAXPROCS suffix is folded
// into the base name so counts aggregate across identical runs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+(\d+) allocs/op)?`)

func main() {
	var (
		out        = flag.String("o", "", "write JSON here instead of stdout")
		baseline   = flag.String("baseline", "", "gate mode: compare stdin against this benchjson file")
		maxNs      = flag.Float64("max-ns-regress", 0.10, "gate mode: fail when ns/op grows by more than this fraction")
		maxAllocs  = flag.Float64("max-allocs-regress", 0.10, "gate mode: fail when allocs/op grows by more than this fraction")
		enforceSpd = flag.Bool("enforce-speedup", false, "gate mode: fail when a measured speedup_vs_workers1 falls below the baseline's min_speedup_vs_workers1 (only meaningful on multi-core runners)")
	)
	flag.Parse()

	cur, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(2)
	}
	fillSpeedups(cur)

	if *baseline != "" {
		base, err := readFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if gate(os.Stdout, base, cur, *maxNs, *maxAllocs, *enforceSpd) {
			os.Exit(1)
		}
		return
	}

	data, err := json.MarshalIndent(cur, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}

// parse reads either raw `go test -bench` output or an already-emitted
// benchjson document (sniffed by the leading '{').
func parse(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(1)
	if len(head) == 1 && head[0] == '{' {
		var f File
		if err := json.NewDecoder(br).Decode(&f); err != nil {
			return nil, fmt.Errorf("decode baseline JSON: %w", err)
		}
		return &f, nil
	}
	return parseRaw(br)
}

// sample accumulates per-run values for one benchmark name.
type sample struct {
	ns, bytes []float64
	allocs    float64
}

func parseRaw(r io.Reader) (*File, error) {
	f := &File{}
	samples := map[string]*sample{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			f.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		s := samples[name]
		if s == nil {
			s = &sample{}
			samples[name] = s
			order = append(order, name)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		s.ns = append(s.ns, ns)
		if m[4] != "" {
			b, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
			a, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			s.bytes = append(s.bytes, b)
			if a > s.allocs {
				s.allocs = a
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		s := samples[name]
		f.Benchmarks = append(f.Benchmarks, Benchmark{
			Name:        name,
			Runs:        len(s.ns),
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: s.allocs,
		})
	}
	return f, nil
}

// workersName splits a ".../workers=N" benchmark name into its tier
// prefix and worker count; ok is false for names without the suffix.
func workersName(name string) (prefix string, workers int, ok bool) {
	m := workersRe.FindStringSubmatch(name)
	if m == nil {
		return "", 0, false
	}
	w, err := strconv.Atoi(m[2])
	if err != nil {
		return "", 0, false
	}
	return m[1], w, true
}

var workersRe = regexp.MustCompile(`^(.+)/workers=(\d+)$`)

// fillSpeedups computes speedup_vs_workers1 for every multi-worker
// benchmark whose workers=1 sibling was measured in the same document.
// The ratio is derived, never copied from a baseline, so a stale
// hand-edited value can't leak into the gate.
func fillSpeedups(f *File) {
	w1 := map[string]float64{}
	for _, b := range f.Benchmarks {
		if prefix, w, ok := workersName(b.Name); ok && w == 1 && b.NsPerOp > 0 {
			w1[prefix] = b.NsPerOp
		}
	}
	for i := range f.Benchmarks {
		b := &f.Benchmarks[i]
		prefix, w, ok := workersName(b.Name)
		if !ok || w == 1 || b.NsPerOp <= 0 {
			continue
		}
		if base, ok := w1[prefix]; ok {
			s := base / b.NsPerOp
			b.SpeedupVsWorkers1 = &s
		}
	}
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func readFile(path string) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return parse(fh)
}

// gate reports regressions of cur against base; returns true when any
// benchmark regressed beyond its budget. Per-entry budgets in the
// baseline override the flag defaults. Benchmarks present on only
// one side are reported but never fail the gate, so adding or retiring
// a benchmark doesn't require touching the baseline in the same change.
// Speedup ratios versus the workers=1 sibling are always reported;
// enforceSpd additionally fails entries below the baseline's
// min_speedup_vs_workers1 budget.
func gate(w io.Writer, base, cur *File, maxNs, maxAllocs float64, enforceSpd bool) bool {
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	failed := false
	for _, c := range cur.Benchmarks {
		b, ok := baseBy[c.Name]
		if !ok {
			fmt.Fprintf(w, "  new  %-28s %12.1f ns/op %10.0f allocs/op (no baseline)\n", c.Name, c.NsPerOp, c.AllocsPerOp)
			continue
		}
		delete(baseBy, c.Name)
		nsBudget, allocBudget := maxNs, maxAllocs
		if b.MaxNsRegress != nil {
			nsBudget = *b.MaxNsRegress
		}
		if b.MaxAllocsRegress != nil {
			allocBudget = *b.MaxAllocsRegress
		}
		nsDelta := ratio(c.NsPerOp, b.NsPerOp)
		allocDelta := ratio(c.AllocsPerOp, b.AllocsPerOp)
		verdict := "ok  "
		if nsDelta > nsBudget || allocDelta > allocBudget {
			verdict = "FAIL"
			failed = true
		}
		fmt.Fprintf(w, "  %s %-28s ns/op %12.1f -> %12.1f (%+6.1f%%, budget %+.0f%%)  allocs/op %8.0f -> %8.0f (%+6.1f%%, budget %+.0f%%)\n",
			verdict, c.Name, b.NsPerOp, c.NsPerOp, 100*nsDelta, 100*nsBudget, b.AllocsPerOp, c.AllocsPerOp, 100*allocDelta, 100*allocBudget)
		if nsDelta > nsBudget {
			fmt.Fprintf(w, "       %s: ns/op regressed %+.1f%%, budget %+.0f%%\n", c.Name, 100*nsDelta, 100*nsBudget)
		}
		if allocDelta > allocBudget {
			fmt.Fprintf(w, "       %s: allocs/op regressed %+.1f%%, budget %+.0f%%\n", c.Name, 100*allocDelta, 100*allocBudget)
		}
		if c.SpeedupVsWorkers1 != nil {
			got := *c.SpeedupVsWorkers1
			switch {
			case b.MinSpeedupVsWorkers1 == nil:
				fmt.Fprintf(w, "       %s: %.2fx vs workers=1\n", c.Name, got)
			case enforceSpd && got < *b.MinSpeedupVsWorkers1:
				failed = true
				fmt.Fprintf(w, "       %s: %.2fx vs workers=1, below the %.2fx floor — FAIL\n", c.Name, got, *b.MinSpeedupVsWorkers1)
			case enforceSpd:
				fmt.Fprintf(w, "       %s: %.2fx vs workers=1 (floor %.2fx) ok\n", c.Name, got, *b.MinSpeedupVsWorkers1)
			default:
				fmt.Fprintf(w, "       %s: %.2fx vs workers=1 (floor %.2fx not enforced on this runner)\n", c.Name, got, *b.MinSpeedupVsWorkers1)
			}
		}
	}
	for name := range baseBy {
		fmt.Fprintf(w, "  gone %-28s (in baseline, not measured)\n", name)
	}
	if failed {
		fmt.Fprintln(w, "benchjson: regression gate FAILED")
	} else {
		fmt.Fprintln(w, "benchjson: regression gate passed")
	}
	return failed
}

// ratio is the fractional growth of cur over base; a zero base only
// regresses when cur became non-zero.
func ratio(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1
	}
	return cur/base - 1
}
