package main

import (
	"strings"
	"testing"
)

const rawSample = `goos: linux
goarch: amd64
pkg: iscope
cpu: AMD EPYC 7B13
BenchmarkScanChip-8        	 2000000	       600 ns/op	      48 B/op	       1 allocs/op
BenchmarkScanChip-8        	 2000000	       580 ns/op	      48 B/op	       1 allocs/op
BenchmarkScanChip-8        	 2000000	       590 ns/op	      48 B/op	       1 allocs/op
BenchmarkSimulationRun-8   	     270	   4400000 ns/op	  977200 B/op	   15515 allocs/op
PASS
ok  	iscope	12.3s
`

func TestParseRawAggregates(t *testing.T) {
	f, err := parse(strings.NewReader(rawSample))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.Pkg != "iscope" || f.CPU != "AMD EPYC 7B13" {
		t.Errorf("header metadata not captured: %+v", f)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(f.Benchmarks))
	}
	scan := f.Benchmarks[0]
	if scan.Name != "BenchmarkScanChip" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", scan.Name)
	}
	if scan.Runs != 3 || scan.NsPerOp != 590 {
		t.Errorf("median over 3 runs: got runs=%d ns=%v, want 3/590", scan.Runs, scan.NsPerOp)
	}
	if scan.BytesPerOp != 48 || scan.AllocsPerOp != 1 {
		t.Errorf("memory stats: got %v B/op %v allocs/op", scan.BytesPerOp, scan.AllocsPerOp)
	}
	sim := f.Benchmarks[1]
	if sim.Name != "BenchmarkSimulationRun" || sim.NsPerOp != 4400000 || sim.AllocsPerOp != 15515 {
		t.Errorf("single-run benchmark: %+v", sim)
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	f, err := parse(strings.NewReader(rawSample))
	if err != nil {
		t.Fatalf("parse raw: %v", err)
	}
	// A benchjson document on stdin (gate mode against a JSON file)
	// must decode to the same thing.
	var sb strings.Builder
	sb.WriteString(`{"benchmarks":[{"name":"BenchmarkScanChip","runs":3,"ns_per_op":590,"bytes_per_op":48,"allocs_per_op":1}]}`)
	g, err := parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse json: %v", err)
	}
	if g.Benchmarks[0] != f.Benchmarks[0] {
		t.Errorf("round trip mismatch: %+v vs %+v", g.Benchmarks[0], f.Benchmarks[0])
	}
}

func TestGate(t *testing.T) {
	base := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 10},
		{Name: "BenchmarkGone", NsPerOp: 5, AllocsPerOp: 0},
	}}
	cases := []struct {
		name string
		cur  Benchmark
		fail bool
	}{
		{"within budget", Benchmark{Name: "BenchmarkA", NsPerOp: 1050, AllocsPerOp: 10}, false},
		{"improvement", Benchmark{Name: "BenchmarkA", NsPerOp: 400, AllocsPerOp: 1}, false},
		{"ns regression", Benchmark{Name: "BenchmarkA", NsPerOp: 1200, AllocsPerOp: 10}, true},
		{"alloc regression", Benchmark{Name: "BenchmarkA", NsPerOp: 1000, AllocsPerOp: 12}, true},
		{"unknown benchmark never fails", Benchmark{Name: "BenchmarkNew", NsPerOp: 9e9, AllocsPerOp: 9e9}, false},
	}
	for _, tc := range cases {
		var out strings.Builder
		cur := &File{Benchmarks: []Benchmark{tc.cur}}
		if got := gate(&out, base, cur, 0.10, 0.10, false); got != tc.fail {
			t.Errorf("%s: gate=%v, want %v\n%s", tc.name, got, tc.fail, out.String())
		}
		if !strings.Contains(out.String(), "BenchmarkGone") {
			t.Errorf("%s: missing-benchmark note absent from report", tc.name)
		}
	}
}

// TestGatePerBenchmarkBudgets covers the baseline-carried overrides:
// a loose per-entry budget admits a swing the global default would
// reject, a tight one rejects a swing the default would admit, and the
// failure report names the benchmark, the metric and the budget.
func TestGatePerBenchmarkBudgets(t *testing.T) {
	loose, tight := 0.50, 0.02
	base := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkLoose", NsPerOp: 1000, AllocsPerOp: 10, MaxNsRegress: &loose},
		{Name: "BenchmarkTight", NsPerOp: 1000, AllocsPerOp: 10, MaxAllocsRegress: &tight},
	}}

	var out strings.Builder
	cur := &File{Benchmarks: []Benchmark{
		// +30% ns/op: over the 10% default, under the 50% override.
		{Name: "BenchmarkLoose", NsPerOp: 1300, AllocsPerOp: 10},
	}}
	if gate(&out, base, cur, 0.10, 0.10, false) {
		t.Errorf("loose override ignored; report:\n%s", out.String())
	}

	out.Reset()
	cur = &File{Benchmarks: []Benchmark{
		// +50% ns/op exceeds even the loose override.
		{Name: "BenchmarkLoose", NsPerOp: 1600, AllocsPerOp: 10},
	}}
	if !gate(&out, base, cur, 0.10, 0.10, false) {
		t.Errorf("regression past the loose override passed; report:\n%s", out.String())
	}
	for _, want := range []string{"BenchmarkLoose", "ns/op regressed", "budget +50%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("failure diff missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	cur = &File{Benchmarks: []Benchmark{
		// +10% allocs/op: inside the default, outside the 2% override.
		{Name: "BenchmarkTight", NsPerOp: 1000, AllocsPerOp: 11},
	}}
	if !gate(&out, base, cur, 0.10, 0.10, false) {
		t.Errorf("tight alloc override ignored; report:\n%s", out.String())
	}
	for _, want := range []string{"BenchmarkTight", "allocs/op regressed", "budget +2%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("failure diff missing %q:\n%s", want, out.String())
		}
	}
}

// TestBudgetsSurviveJSONRoundTrip pins that a baseline's per-entry
// budgets are preserved when the file is re-read in gate mode.
func TestBudgetsSurviveJSONRoundTrip(t *testing.T) {
	doc := `{"benchmarks":[{"name":"BenchmarkA","ns_per_op":100,"allocs_per_op":1,"max_ns_regress":0.5}]}`
	f, err := parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := f.Benchmarks[0]
	if b.MaxNsRegress == nil || *b.MaxNsRegress != 0.5 {
		t.Errorf("max_ns_regress not decoded: %+v", b)
	}
	if b.MaxAllocsRegress != nil {
		t.Errorf("absent max_allocs_regress decoded as %v, want nil", *b.MaxAllocsRegress)
	}
}

// TestSpeedupRatio covers the parallel-tier satellite: the
// workers=N/workers=1 ratio is always recomputed from the current
// document (never copied from a baseline), and the baseline's
// min_speedup_vs_workers1 floor fails the gate only when the caller
// opts in with enforceSpd (CI passes -enforce-speedup on runners with
// enough cores to make the floor meaningful).
func TestSpeedupRatio(t *testing.T) {
	doc := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkRun/procs=10/workers=1", NsPerOp: 1000, AllocsPerOp: 1},
		{Name: "BenchmarkRun/procs=10/workers=8", NsPerOp: 400, AllocsPerOp: 1},
		{Name: "BenchmarkScalar", NsPerOp: 5, AllocsPerOp: 0},
	}}
	fillSpeedups(doc)
	if doc.Benchmarks[0].SpeedupVsWorkers1 != nil {
		t.Errorf("workers=1 entry got a speedup ratio")
	}
	if doc.Benchmarks[2].SpeedupVsWorkers1 != nil {
		t.Errorf("non-sweep entry got a speedup ratio")
	}
	got := doc.Benchmarks[1].SpeedupVsWorkers1
	if got == nil || *got != 2.5 {
		t.Fatalf("workers=8 speedup = %v, want 2.5", got)
	}

	floor := 3.0
	base := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkRun/procs=10/workers=1", NsPerOp: 1000, AllocsPerOp: 1},
		{Name: "BenchmarkRun/procs=10/workers=8", NsPerOp: 400, AllocsPerOp: 1,
			MinSpeedupVsWorkers1: &floor},
	}}
	var out strings.Builder
	if gate(&out, base, doc, 0.10, 0.10, false) {
		t.Errorf("speedup floor enforced without -enforce-speedup; report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "not enforced") {
		t.Errorf("unenforced floor not called out in report:\n%s", out.String())
	}
	out.Reset()
	if !gate(&out, base, doc, 0.10, 0.10, true) {
		t.Errorf("2.5x speedup passed a 3.0x floor under -enforce-speedup; report:\n%s", out.String())
	}
	for _, want := range []string{"workers=8", "floor", "FAIL"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("speedup failure report missing %q:\n%s", want, out.String())
		}
	}
	// Raise the measured speedup past the floor: the gate passes again.
	fast := doc.Benchmarks[1]
	fast.NsPerOp = 300
	cur := &File{Benchmarks: []Benchmark{doc.Benchmarks[0], fast, doc.Benchmarks[2]}}
	fillSpeedups(cur)
	out.Reset()
	if gate(&out, base, cur, 0.10, 0.10, true) {
		t.Errorf("3.3x speedup failed a 3.0x floor; report:\n%s", out.String())
	}
}

func TestRatioZeroBase(t *testing.T) {
	if r := ratio(0, 0); r != 0 {
		t.Errorf("ratio(0,0)=%v, want 0", r)
	}
	// Going from zero allocations to any allocations is a regression.
	if r := ratio(3, 0); r <= 0.10 {
		t.Errorf("ratio(3,0)=%v, want > gate budget", r)
	}
}
