package main

import "testing"

func TestScannerRunSmoke(t *testing.T) {
	if err := run(8, 7, "stress", 0, false, false); err != nil {
		t.Fatalf("stress scan: %v", err)
	}
	if err := run(8, 7, "functional", 0.002, true, true); err != nil {
		t.Fatalf("functional GPU-on summary scan: %v", err)
	}
}

func TestScannerRejectsUnknownTest(t *testing.T) {
	if err := run(4, 7, "quantum", 0, false, false); err == nil {
		t.Fatal("unknown test kind accepted")
	}
}
