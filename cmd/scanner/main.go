// Command scanner demonstrates the iScope scanner: it generates a
// fleet, runs the master/slave descending-voltage scan, and prints each
// chip's measured minimum voltages against its factory bin voltage,
// plus the scan's energy/cost overhead.
//
// Usage:
//
//	scanner -chips 16
//	scanner -chips 4800 -test functional -summary
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"iscope/internal/binning"
	"iscope/internal/metrics"
	"iscope/internal/power"
	"iscope/internal/profiling"
	"iscope/internal/rng"
	"iscope/internal/units"
	"iscope/internal/variation"
)

type vt struct{ *power.Table }

func (t vt) VnomAt(l int) units.Volts { return t.Levels[l].Vnom }

func main() {
	var (
		chips    = flag.Int("chips", 16, "number of chips to scan")
		seed     = flag.Uint64("seed", 42, "random seed")
		testKind = flag.String("test", "stress", "stability test: stress (10 min/point) or functional (29 s/point)")
		noise    = flag.Float64("noise", 0, "measurement noise sigma in volts")
		gpu      = flag.Bool("gpu", false, "profile with the integrated GPU enabled")
		summary  = flag.Bool("summary", false, "print only the aggregate summary")
	)
	flag.Parse()

	if err := run(*chips, *seed, *testKind, *noise, *gpu, *summary); err != nil {
		fmt.Fprintf(os.Stderr, "scanner: %v\n", err)
		os.Exit(1)
	}
}

func run(n int, seed uint64, testKind string, noise float64, gpu, summary bool) error {
	model, err := variation.NewModel(variation.DefaultConfig(seed))
	if err != nil {
		return err
	}
	fleet := model.GenerateFleet(n)
	tbl := power.DefaultTable()

	cfg := profiling.DefaultConfig()
	switch testKind {
	case "stress":
		cfg.Kind = profiling.Stress
	case "functional":
		cfg.Kind = profiling.Functional
	default:
		return fmt.Errorf("unknown test kind %q", testKind)
	}
	cfg.GPUOn = gpu

	tester := profiling.NewTester(fleet, vt{tbl}, noise, rng.Named(seed, "scanner-cli"))
	db := profiling.NewDB(n, tbl.NumLevels())
	sc, err := profiling.NewScanner(cfg, tester, vt{tbl}, db)
	if err != nil {
		return err
	}

	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	rep := sc.ScanFleet(ids, 0)

	bins, err := binning.Assign(fleet, tbl, binning.DefaultBins, binning.DefaultFactoryGuard)
	if err != nil {
		return err
	}

	if !summary {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "chip\tbin")
		for l := 0; l < tbl.NumLevels(); l++ {
			fmt.Fprintf(tw, "\t%s scan/bin (V)", tbl.Levels[l].Freq)
		}
		fmt.Fprintln(tw)
		for id := 0; id < n; id++ {
			fmt.Fprintf(tw, "%d\t%d", id, bins.BinOf(id))
			for l := 0; l < tbl.NumLevels(); l++ {
				v, _ := db.Lookup(id, l)
				fmt.Fprintf(tw, "\t%.3f/%.3f", float64(v), float64(bins.Vdd(id, l)))
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	prices := metrics.DefaultPrices()
	fmt.Printf("\nscanned %d chips, %d configuration points (%s test)\n", rep.Chips, rep.Points, cfg.Kind)
	fmt.Printf("scan energy %s — %s on renewable, %s on utility power\n",
		rep.Energy, rep.Cost(prices.Wind), rep.Cost(prices.Utility))
	full := sc.OverheadEstimate(n)
	fmt.Printf("exhaustive (all-point) estimate: %s — %s renewable / %s utility\n",
		full.Energy, full.Cost(prices.Wind), full.Cost(prices.Utility))
	return nil
}
