package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// base returns flag defaults scaled down for fast tests.
func base() options {
	return options{scheme: "ScanFair", procs: 24, jobs: 40, spanDays: 0.5, hu: 0.3, rate: 1, windScale: 1, seed: 7}
}

func TestRunSmoke(t *testing.T) {
	// A tiny end-to-end run through the CLI path: synthesize, simulate,
	// print. Covers flag-plumbing regressions.
	o := base()
	o.useWind = true
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("wind run failed: %v", err)
	}
	o = base()
	o.scheme, o.procs, o.jobs, o.trace = "BinEffi", 16, 30, true
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("traced utility run failed: %v", err)
	}
	o = base()
	o.scheme, o.procs, o.jobs, o.useWind, o.online = "ScanEffi", 16, 30, true, true
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("online-profiling run failed: %v", err)
	}
}

func TestRunWithFaults(t *testing.T) {
	// The -faults path: full default environment plus per-class
	// overrides, battery attached so fade has something to act on.
	o := base()
	o.useWind = true
	o.battery = 10
	o.faults = true
	o.crashMTBFDays = 0.25
	o.falsePass = 0.2
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
}

func TestFaultSpecAssembly(t *testing.T) {
	if s := base().faultSpec(); s != nil {
		t.Fatalf("no fault flags set, got spec %+v", s)
	}
	o := base()
	o.dropouts = 3
	s := o.faultSpec()
	if s == nil || s.DropoutsPerDay != 3 || s.CrashMTBF != 0 {
		t.Fatalf("single-class flag assembled %+v", s)
	}
	o = base()
	o.faults = true
	o.repairMin = 10
	s = o.faultSpec()
	if s == nil || s.CrashMTBF == 0 || s.RepairTime != 600 {
		t.Fatalf("-faults with override assembled %+v", s)
	}
}

func TestRunRejectsUnknownScheme(t *testing.T) {
	o := base()
	o.scheme = "NoSuchScheme"
	if err := run(context.Background(), o); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunRejectsMissingSWF(t *testing.T) {
	o := base()
	o.swfPath = "/nonexistent.swf"
	if err := run(context.Background(), o); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestRunCheckpointResume(t *testing.T) {
	// The -checkpoint/-resume plumbing: a run writes snapshots to the
	// file, and a second invocation resumes from it cleanly.
	dir := t.TempDir()
	o := base()
	o.useWind = true
	o.checkpointPath = filepath.Join(dir, "run.ck")
	o.checkpointEvery = 2 * time.Hour
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("checkpointed run failed: %v", err)
	}
	if _, err := os.Stat(o.checkpointPath); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	o.resumePath = o.checkpointPath
	if err := run(context.Background(), o); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
}

func TestRunRejectsMissingSnapshot(t *testing.T) {
	o := base()
	o.resumePath = "/nonexistent.ck"
	if err := run(context.Background(), o); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}
