package main

import "testing"

func TestRunSmoke(t *testing.T) {
	// A tiny end-to-end run through the CLI path: synthesize, simulate,
	// print. Covers flag-plumbing regressions.
	if err := run("ScanFair", 24, 40, 0.5, 0.3, 1, true, 1, 7, "", false, false); err != nil {
		t.Fatalf("wind run failed: %v", err)
	}
	if err := run("BinEffi", 16, 30, 0.5, 0.3, 1, false, 1, 7, "", true, false); err != nil {
		t.Fatalf("traced utility run failed: %v", err)
	}
	if err := run("ScanEffi", 16, 30, 0.5, 0.3, 1, true, 1, 7, "", false, true); err != nil {
		t.Fatalf("online-profiling run failed: %v", err)
	}
}

func TestRunRejectsUnknownScheme(t *testing.T) {
	if err := run("NoSuchScheme", 8, 10, 0.5, 0.3, 1, false, 1, 7, "", false, false); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestRunRejectsMissingSWF(t *testing.T) {
	if err := run("ScanFair", 8, 10, 0.5, 0.3, 1, false, 1, 7, "/nonexistent.swf", false, false); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
