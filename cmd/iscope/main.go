// Command iscope runs one green-datacenter simulation and prints the
// energy, cost and balance summary.
//
// Usage:
//
//	iscope -scheme ScanFair -procs 960 -jobs 1200 -hu 0.3 -wind
//	iscope -scheme BinRan -procs 4800 -jobs 4000 -rate 3
//	iscope -swf thunder.swf -scheme ScanEffi -wind
//	iscope -scheme ScanFair -wind -battery 30 -faults
//	iscope -scheme ScanFair -wind -battery 5 -faults -brownout -invariants
//	iscope -scheme ScanEffi -wind -brownout-spec t1=0.1,up=2m,hold=1h
//	iscope -scheme ScanFair -wind -checkpoint run.ck -checkpoint-every 2h
//	iscope -scheme ScanFair -wind -resume run.ck -checkpoint run.ck
//	iscope -daemon http://127.0.0.1:8080 -scheme ScanFair -wind -jobs 600
//
// A run with -checkpoint can be interrupted (Ctrl-C / SIGTERM): a final
// snapshot is flushed before exiting, and -resume continues it with
// results bit-identical to an uninterrupted run.
//
// With -daemon URL the command becomes a thin client of an iscoped
// daemon: it creates a tenant from the same flags, streams the
// synthesized workload over the wire, seals the stream and prints the
// daemon's result. Flags that have no wire equivalent (-swf, -trace,
// -online, -battery, the fault flags, -brownout-spec, -checkpoint,
// -resume) are rejected in daemon mode; in this mode -windscale is the
// wind mean as a fraction of the fleet's peak demand.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"iscope"
	"iscope/internal/brownout"
	"iscope/internal/checkpoint"
	"iscope/internal/profiles"
	"iscope/internal/service"
)

// options collects every flag; one struct keeps run's signature sane.
type options struct {
	scheme    string
	procs     int
	jobs      int
	maxWidth  int
	rebalance bool
	spanDays  float64
	hu        float64
	rate      float64
	useWind   bool
	windScale float64
	seed      uint64
	swfPath   string
	trace     bool
	online    bool
	battery   float64
	parallel  int

	// Faults section.
	faults        bool
	crashMTBFDays float64
	repairMin     float64
	dropouts      float64
	falsePass     float64
	fadePerDay    float64

	// Telemetry section.
	telemetry     bool
	telemetrySpec string

	// Brownout/invariants section.
	brownout     bool
	brownoutSpec string
	invariants   bool

	// Checkpoint/resume section.
	checkpointPath  string
	checkpointEvery time.Duration
	resumePath      string

	// Runtime profiling section. (-trace is already the power-trace
	// sampler, so the execution trace goes by -exectrace.)
	cpuProfile string
	memProfile string
	execTrace  string

	// Daemon client section.
	daemonURL  string
	tenant     string
	rpcTimeout time.Duration
	rpcRetries int
}

func main() {
	var o options
	flag.StringVar(&o.scheme, "scheme", "ScanFair", "scheduling scheme (BinRan, BinEffi, ScanRan, ScanEffi, ScanFair, BinFair)")
	flag.IntVar(&o.procs, "procs", 960, "number of processors")
	flag.IntVar(&o.jobs, "jobs", 1200, "number of synthesized jobs")
	flag.IntVar(&o.maxWidth, "maxwidth", 0, "widest synthesized job in processors (0 = procs/2; the bench tiers use 64)")
	flag.BoolVar(&o.rebalance, "rebalance", false, "enable periodic queue rebalancing (the bench large tiers run with it on)")
	flag.Float64Var(&o.spanDays, "span", 2, "workload arrival window in days")
	flag.Float64Var(&o.hu, "hu", 0.3, "fraction of high-urgency jobs")
	flag.Float64Var(&o.rate, "rate", 1, "arrival-rate factor (5 = submit times compressed to 20%)")
	flag.BoolVar(&o.useWind, "wind", false, "power the datacenter with wind + utility (default utility-only)")
	flag.Float64Var(&o.windScale, "windscale", 1, "wind strength multiplier (SWP factor)")
	flag.Uint64Var(&o.seed, "seed", 42, "master random seed")
	flag.StringVar(&o.swfPath, "swf", "", "load jobs from an SWF trace file instead of synthesizing")
	flag.BoolVar(&o.trace, "trace", false, "sample the power trace every 350 s and print it")
	flag.BoolVar(&o.online, "online", false, "profile opportunistically during the run instead of pre-scanning")
	flag.Float64Var(&o.battery, "battery", 0, "on-site battery capacity in kWh (0 = none)")
	flag.IntVar(&o.parallel, "parallel", 0, "worker count for the sharded scheduling kernels (0/1 = serial; results are bit-identical for every value)")

	// Faults: deterministic injection compiled from the master seed.
	// -faults enables the full default environment; the per-class flags
	// activate (or, combined with -faults, override) single classes.
	flag.BoolVar(&o.faults, "faults", false, "inject the default fault environment (crashes, supply dropouts, scanner false passes, battery fade)")
	flag.Float64Var(&o.crashMTBFDays, "crash-mtbf", 0, "mean days between per-processor crashes (0 = class off)")
	flag.Float64Var(&o.repairMin, "repair", 0, "mean crash repair time in minutes (default 30 when crashes are on)")
	flag.Float64Var(&o.dropouts, "dropouts", 0, "renewable derating windows per day (0 = class off)")
	flag.Float64Var(&o.falsePass, "false-pass", 0, "fraction of the fleet with optimistic scan reports (0 = class off)")
	flag.Float64Var(&o.fadePerDay, "fade", 0, "daily battery capacity fade fraction (0 = class off)")

	// Telemetry: replace the scheduler's oracle view of power with
	// deterministic noisy sensors and a disaggregating estimator.
	flag.BoolVar(&o.telemetry, "telemetry", false, "drive the scheduler from simulated power sensors (noise, drift, quantization, dropouts) instead of true watts")
	flag.StringVar(&o.telemetrySpec, "telemetry-spec", "", "sensor-environment overrides as key=value pairs (interval, noise, drift, quant, node, dropouts, dropmean, stuck, spikes, spikemag, margin, horizon); implies -telemetry")

	// Brownout ladder: staged graceful degradation under supply
	// deficit, with an optional inline runtime-verification monitor.
	flag.BoolVar(&o.brownout, "brownout", false, "enable the staged degradation ladder (needs -wind): DVFS down-leveling, admission deferral, battery reserve, load shedding")
	flag.StringVar(&o.brownoutSpec, "brownout-spec", "", "ladder overrides as key=value pairs (t1..t4, up, down, reserve, downlevel, restarts, hold, slack); implies -brownout")
	flag.BoolVar(&o.invariants, "invariants", false, "run the online invariant monitor (energy conservation, SoC bounds, slice conservation) and report violations")

	// Checkpoint/resume: periodic snapshots of the full simulation
	// state, plus a final one on SIGINT/SIGTERM, so a long run can be
	// interrupted and continued bit-identically.
	flag.StringVar(&o.checkpointPath, "checkpoint", "", "write snapshots of the simulation state to this file (atomically, overwriting)")
	flag.DurationVar(&o.checkpointEvery, "checkpoint-every", time.Hour, "simulated time between snapshots (with -checkpoint)")
	flag.StringVar(&o.resumePath, "resume", "", "resume the run from a snapshot file written by -checkpoint")

	// Runtime profiling: collectors flush on clean exit and on
	// SIGINT/SIGTERM alike, because a signal cancels the run
	// cooperatively and the normal return path still executes.
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&o.execTrace, "exectrace", "", "write a runtime execution trace to this file (-trace is the power-trace sampler)")

	// Daemon client mode: stream the run into an iscoped instance
	// instead of simulating in-process.
	flag.StringVar(&o.daemonURL, "daemon", "", "iscoped base URL (e.g. http://127.0.0.1:8080): stream this run into the daemon instead of simulating locally")
	flag.StringVar(&o.tenant, "tenant", "iscope-cli", "tenant name to create on the daemon (with -daemon)")
	flag.DurationVar(&o.rpcTimeout, "rpc-timeout", 30*time.Second, "per-request timeout for daemon calls (with -daemon)")
	flag.IntVar(&o.rpcRetries, "rpc-retries", 5, "retry budget per daemon call for transport errors and 503s (with -daemon); submissions carry idempotency keys, so retries never duplicate jobs")
	flag.Parse()

	// A signal cancels the run cooperatively: the scheduler stops at
	// the next event boundary and flushes a final snapshot first.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := run
	if o.daemonURL != "" {
		runner = runDaemon
	}
	if err := runner(ctx, o); err != nil {
		fmt.Fprintf(os.Stderr, "iscope: %v\n", err)
		if errors.Is(err, context.Canceled) && o.checkpointPath != "" {
			fmt.Fprintf(os.Stderr, "iscope: state saved; continue with -resume %s\n", o.checkpointPath)
		}
		os.Exit(1)
	}
}

// faultSpec assembles the fault environment from the flag section;
// nil means injection stays off and the run is bit-identical to a
// fault-free one.
func (o options) faultSpec() *iscope.FaultSpec {
	spec := iscope.FaultSpec{}
	if o.faults {
		spec = iscope.DefaultFaultSpec()
	}
	if o.crashMTBFDays > 0 {
		spec.CrashMTBF = iscope.Seconds(o.crashMTBFDays * 86400)
	}
	if o.repairMin > 0 {
		spec.RepairTime = iscope.Seconds(o.repairMin * 60)
	}
	if o.dropouts > 0 {
		spec.DropoutsPerDay = o.dropouts
	}
	if o.falsePass > 0 {
		spec.FalsePassFrac = o.falsePass
	}
	if o.fadePerDay > 0 {
		spec.FadeInterval = iscope.Seconds(86400)
		spec.FadeFrac = o.fadePerDay
	}
	if !spec.Enabled() {
		return nil
	}
	return &spec
}

// synthMaxWidth is the widest job SynthesizeWorkload may emit: the
// explicit -maxwidth when given, else half the fleet.
func (o options) synthMaxWidth() int {
	if o.maxWidth > 0 {
		return o.maxWidth
	}
	maxW := o.procs / 2
	if maxW < 1 {
		maxW = 1
	}
	return maxW
}

func run(ctx context.Context, o options) (err error) {
	prof, err := profiles.Start(o.cpuProfile, o.memProfile, o.execTrace)
	if err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()

	scheme, ok := iscope.SchemeByName(o.scheme)
	if !ok {
		return fmt.Errorf("unknown scheme %q", o.scheme)
	}

	start := time.Now()
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(o.seed, o.procs))
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d processors built and scanned in %v (scan energy %s)\n",
		o.procs, time.Since(start).Round(time.Millisecond), fleet.ScanReport.Energy)

	var tr *iscope.WorkloadTrace
	if o.swfPath != "" {
		f, err := os.Open(o.swfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = iscope.ReadSWF(f, true, o.jobs)
		if err != nil {
			return err
		}
		if err := iscope.AssignDeadlines(tr, o.seed+1, o.hu); err != nil {
			return err
		}
	} else {
		tr, err = iscope.SynthesizeWorkload(o.seed, o.jobs, o.synthMaxWidth(), o.spanDays, o.hu)
		if err != nil {
			return err
		}
	}
	if o.rate != 1 {
		if err := tr.ScaleArrival(o.rate); err != nil {
			return err
		}
	}

	cfg := iscope.RunConfig{Seed: o.seed, Jobs: tr, Workers: o.parallel, EnableRebalance: o.rebalance}
	if o.useWind {
		w, err := iscope.GenerateWind(o.seed+2, o.spanDays*2+2)
		if err != nil {
			return err
		}
		cfg.Wind = w.Scale(o.windScale * float64(o.procs) / 4800.0)
	}
	if o.battery > 0 {
		b := iscope.DefaultBattery(o.battery)
		cfg.Battery = &b
	}
	if o.trace {
		cfg.SampleInterval = 350
	}
	if o.online {
		cfg.Online = &iscope.OnlineProfiling{}
	}
	cfg.Faults = o.faultSpec()

	if o.telemetry || o.telemetrySpec != "" {
		spec, err := iscope.ParseTelemetrySpec(o.telemetrySpec)
		if err != nil {
			return err
		}
		cfg.Telemetry = &spec
	}

	if o.brownout || o.brownoutSpec != "" {
		if !o.useWind {
			return fmt.Errorf("-brownout watches the renewable supply; it needs -wind")
		}
		bc, err := iscope.ParseBrownoutSpec(o.brownoutSpec)
		if err != nil {
			return err
		}
		cfg.Brownout = &bc
	}
	if o.invariants {
		cfg.Invariants = &iscope.InvariantsConfig{Action: iscope.RecordInvariants}
	}

	if o.checkpointPath != "" && o.checkpointEvery > 0 {
		path := o.checkpointPath
		cfg.Checkpoint = &iscope.CheckpointConfig{
			Every: iscope.Seconds(o.checkpointEvery.Seconds()),
			Sink:  func(data []byte) error { return checkpoint.WriteBytes(path, data) },
		}
	}
	if o.resumePath != "" {
		snap, err := checkpoint.ReadBytes(o.resumePath)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		cfg.Resume = snap
	}

	res, err := iscope.RunCtx(ctx, fleet, scheme, cfg)
	if err != nil {
		return err
	}

	if err := printSummary(res, cfg.Brownout != nil, cfg.Invariants != nil, cfg.Faults != nil, cfg.Telemetry != nil && cfg.Telemetry.Enabled()); err != nil {
		return err
	}

	if o.trace {
		fmt.Println("\npower trace (350 s sampling):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "t\twind\tdemand\tutility")
		for _, p := range res.Trace {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", p.Time, p.Wind, p.Demand, p.Utility)
		}
		return tw.Flush()
	}
	return nil
}

// printSummary renders the result table shared by the local and
// -daemon paths; the booleans select which optional sections the run
// actually configured.
func printSummary(res *iscope.Result, showBrownout, showInvariants, showFaults, showTelemetry bool) error {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scheme\t%s\n", res.Scheme)
	fmt.Fprintf(tw, "jobs completed\t%d (%d deadline violations)\n", res.JobsCompleted, res.DeadlineViolations)
	fmt.Fprintf(tw, "makespan\t%s\n", res.Makespan)
	fmt.Fprintf(tw, "utility energy\t%s\n", res.UtilityEnergy)
	fmt.Fprintf(tw, "wind energy\t%s of %s offered (%.1f%% utilized)\n",
		res.WindEnergy, res.WindAvailable, 100*res.WindUtilization)
	fmt.Fprintf(tw, "energy cost\t%s (utility share %s)\n", res.Cost, res.UtilityCost)
	fmt.Fprintf(tw, "utilization variance\t%.2f h^2\n", res.UtilVariance)
	if res.ProfiledChips > 0 {
		fmt.Fprintf(tw, "online profiling\t%d chips scanned in-run, %s test energy\n",
			res.ProfiledChips, res.ProfilingEnergy)
	}
	if showBrownout {
		b := res.Brownout
		fmt.Fprintf(tw, "brownout: stages\t%d transitions, peaked at %s, ended at %s\n",
			b.Transitions, brownout.Stage(b.MaxStage), brownout.Stage(b.FinalStage))
		var degraded iscope.Seconds
		for st := 1; st < int(brownout.NumStages); st++ {
			degraded += b.StageDwell[st]
		}
		fmt.Fprintf(tw, "brownout: degraded time\t%s (%d forced down-steps, %d jobs deferred, %d reserve holds)\n",
			degraded, b.DownlevelSteps, b.JobsDeferred, b.ReserveHolds)
		if b.SlicesShed > 0 {
			fmt.Fprintf(tw, "brownout: shedding\t%d slices shed (%s work discarded), %d parks / %d releases (%d forced)\n",
				b.SlicesShed, b.ShedWork, b.ProcsParked, b.ParkReleases, b.ForcedReleases)
		}
	}
	if showInvariants {
		iv := res.Invariants
		if iv.Violations == 0 {
			fmt.Fprintf(tw, "invariants\tclean (%d checks)\n", iv.Checks)
		} else {
			fmt.Fprintf(tw, "invariants\t%d violations in %d checks; first: %s\n",
				iv.Violations, iv.Checks, iv.First)
		}
	}
	if showTelemetry {
		ts := res.Telemetry
		fmt.Fprintf(tw, "telemetry\t%d sensors, %d samples, estimation error %.1f%% mean / %.1f%% max, %s stale in dropouts\n",
			ts.Sensors, ts.Samples, 100*ts.MeanAbsErr, 100*ts.MaxAbsErr, ts.DropoutSeconds)
		if ts.GuardTrips > 0 {
			suffix := ""
			if ts.GuardActive {
				suffix = "; still degraded at end of run"
			}
			fmt.Fprintf(tw, "telemetry: guard\t%d trips, %s on factory-bin assumptions%s\n",
				ts.GuardTrips, ts.GuardSeconds, suffix)
		}
	}
	if showFaults {
		fs := res.Faults
		fmt.Fprintf(tw, "faults: crashes\t%d (%d requeues, %.1f node-hours in repair)\n",
			fs.Crashes, fs.Requeues, fs.RepairHours)
		fmt.Fprintf(tw, "faults: false passes\t%d trips, %d re-executions, %s work lost, %.1f chip-hours at fallback voltage\n",
			fs.FalsePassTrips, fs.ReExecutions, fs.LostWork, fs.FallbackVoltHours)
		fmt.Fprintf(tw, "faults: supply\t%s withheld by derating windows\n", fs.DeratedEnergy)
		if fs.BatteryFadeSteps > 0 {
			fmt.Fprintf(tw, "faults: battery\t%d fade steps, %s capacity lost\n",
				fs.BatteryFadeSteps, fs.BatteryCapacityLost)
		}
	}
	return tw.Flush()
}

// runDaemon is the -daemon client mode: create a tenant on an iscoped
// instance from the same flags, stream the synthesized workload over
// the wire, seal, and print the daemon's result through the shared
// summary table.
func runDaemon(ctx context.Context, o options) error {
	for _, f := range []struct {
		name string
		set  bool
	}{
		{"-swf", o.swfPath != ""},
		{"-trace", o.trace},
		{"-online", o.online},
		{"-battery", o.battery > 0},
		{"-faults (or a fault class flag)", o.faultSpec() != nil},
		{"-telemetry", o.telemetry || o.telemetrySpec != ""},
		{"-brownout-spec", o.brownoutSpec != ""},
		{"-checkpoint", o.checkpointPath != ""},
		{"-resume", o.resumePath != ""},
		{"-rebalance", o.rebalance},
	} {
		if f.set {
			return fmt.Errorf("%s has no wire equivalent; drop it or run without -daemon", f.name)
		}
	}
	if o.brownout && !o.useWind {
		return fmt.Errorf("-brownout watches the renewable supply; it needs -wind")
	}

	spec := service.TenantSpec{
		Name:       o.tenant,
		Scheme:     o.scheme,
		Seed:       o.seed,
		FleetSeed:  o.seed,
		Procs:      o.procs,
		Brownout:   o.brownout,
		Invariants: o.invariants,
		Workers:    o.parallel,
	}
	if o.useWind {
		spec.Wind = &service.WindSpec{Seed: o.seed + 2, Days: o.spanDays*2 + 2, MeanFrac: o.windScale}
	}

	tr, err := iscope.SynthesizeWorkload(o.seed, o.jobs, o.synthMaxWidth(), o.spanDays, o.hu)
	if err != nil {
		return err
	}
	if o.rate != 1 {
		if err := tr.ScaleArrival(o.rate); err != nil {
			return err
		}
	}
	subs := make([]service.JobSubmission, len(tr.Jobs))
	for i, j := range tr.Jobs {
		subs[i] = service.JobSubmission{
			ID: j.ID, At: float64(j.Submit), Runtime: float64(j.Runtime),
			Procs: j.Procs, Boundness: j.Boundness, Deadline: float64(j.Deadline),
		}
	}

	c := &service.Client{BaseURL: o.daemonURL, Timeout: o.rpcTimeout, Retries: o.rpcRetries}
	if _, err := c.CreateTenant(ctx, spec); err != nil {
		return fmt.Errorf("create tenant %q: %w", o.tenant, err)
	}
	const batch = 256
	streamed := 0
	for i := 0; i < len(subs); i += batch {
		j := i + batch
		if j > len(subs) {
			j = len(subs)
		}
		rsp, err := c.Submit(ctx, o.tenant, subs[i:j])
		if err != nil {
			return fmt.Errorf("stream jobs [%d,%d): %w", i, j, err)
		}
		streamed += rsp.Admitted
	}
	if err := c.Seal(ctx, o.tenant); err != nil {
		return fmt.Errorf("seal tenant %q: %w", o.tenant, err)
	}
	res, err := c.Result(ctx, o.tenant)
	if err != nil {
		return fmt.Errorf("result for tenant %q: %w", o.tenant, err)
	}
	st, err := c.Status(ctx, o.tenant)
	if err != nil {
		return fmt.Errorf("status for tenant %q: %w", o.tenant, err)
	}
	fmt.Printf("daemon: tenant %q on %s — %d jobs streamed, virtual clock %s\n",
		o.tenant, o.daemonURL, streamed, iscope.Seconds(st.Now))
	if err := printSummary(res, o.brownout, o.invariants, false, false); err != nil {
		return err
	}
	// The run is read out; free the daemon-side tenant.
	return c.DeleteTenant(ctx, o.tenant)
}
