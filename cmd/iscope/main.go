// Command iscope runs one green-datacenter simulation and prints the
// energy, cost and balance summary.
//
// Usage:
//
//	iscope -scheme ScanFair -procs 960 -jobs 1200 -hu 0.3 -wind
//	iscope -scheme BinRan -procs 4800 -jobs 4000 -rate 3
//	iscope -swf thunder.swf -scheme ScanEffi -wind
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"iscope"
)

func main() {
	var (
		schemeName = flag.String("scheme", "ScanFair", "scheduling scheme (BinRan, BinEffi, ScanRan, ScanEffi, ScanFair, BinFair)")
		procs      = flag.Int("procs", 960, "number of processors")
		jobs       = flag.Int("jobs", 1200, "number of synthesized jobs")
		spanDays   = flag.Float64("span", 2, "workload arrival window in days")
		hu         = flag.Float64("hu", 0.3, "fraction of high-urgency jobs")
		rate       = flag.Float64("rate", 1, "arrival-rate factor (5 = submit times compressed to 20%)")
		useWind    = flag.Bool("wind", false, "power the datacenter with wind + utility (default utility-only)")
		windScale  = flag.Float64("windscale", 1, "wind strength multiplier (SWP factor)")
		seed       = flag.Uint64("seed", 42, "master random seed")
		swfPath    = flag.String("swf", "", "load jobs from an SWF trace file instead of synthesizing")
		trace      = flag.Bool("trace", false, "sample the power trace every 350 s and print it")
		online     = flag.Bool("online", false, "profile opportunistically during the run instead of pre-scanning")
	)
	flag.Parse()

	if err := run(*schemeName, *procs, *jobs, *spanDays, *hu, *rate, *useWind, *windScale, *seed, *swfPath, *trace, *online); err != nil {
		fmt.Fprintf(os.Stderr, "iscope: %v\n", err)
		os.Exit(1)
	}
}

func run(schemeName string, procs, jobs int, spanDays, hu, rate float64, useWind bool, windScale float64, seed uint64, swfPath string, trace, online bool) error {
	scheme, ok := iscope.SchemeByName(schemeName)
	if !ok {
		return fmt.Errorf("unknown scheme %q", schemeName)
	}

	start := time.Now()
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(seed, procs))
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d processors built and scanned in %v (scan energy %s)\n",
		procs, time.Since(start).Round(time.Millisecond), fleet.ScanReport.Energy)

	var tr *iscope.WorkloadTrace
	if swfPath != "" {
		f, err := os.Open(swfPath)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err = iscope.ReadSWF(f, true, jobs)
		if err != nil {
			return err
		}
		if err := iscope.AssignDeadlines(tr, seed+1, hu); err != nil {
			return err
		}
	} else {
		maxW := procs / 2
		if maxW < 1 {
			maxW = 1
		}
		tr, err = iscope.SynthesizeWorkload(seed, jobs, maxW, spanDays, hu)
		if err != nil {
			return err
		}
	}
	if rate != 1 {
		if err := tr.ScaleArrival(rate); err != nil {
			return err
		}
	}

	cfg := iscope.RunConfig{Seed: seed, Jobs: tr}
	if useWind {
		w, err := iscope.GenerateWind(seed+2, spanDays*2+2)
		if err != nil {
			return err
		}
		cfg.Wind = w.Scale(windScale * float64(procs) / 4800.0)
	}
	if trace {
		cfg.SampleInterval = 350
	}
	if online {
		cfg.Online = &iscope.OnlineProfiling{}
	}

	res, err := iscope.Run(fleet, scheme, cfg)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scheme\t%s\n", res.Scheme)
	fmt.Fprintf(tw, "jobs completed\t%d (%d deadline violations)\n", res.JobsCompleted, res.DeadlineViolations)
	fmt.Fprintf(tw, "makespan\t%s\n", res.Makespan)
	fmt.Fprintf(tw, "utility energy\t%s\n", res.UtilityEnergy)
	fmt.Fprintf(tw, "wind energy\t%s of %s offered (%.1f%% utilized)\n",
		res.WindEnergy, res.WindAvailable, 100*res.WindUtilization)
	fmt.Fprintf(tw, "energy cost\t%s (utility share %s)\n", res.Cost, res.UtilityCost)
	fmt.Fprintf(tw, "utilization variance\t%.2f h^2\n", res.UtilVariance)
	if res.ProfiledChips > 0 {
		fmt.Fprintf(tw, "online profiling\t%d chips scanned in-run, %s test energy\n",
			res.ProfiledChips, res.ProfilingEnergy)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if trace {
		fmt.Println("\npower trace (350 s sampling):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "t\twind\tdemand\tutility")
		for _, p := range res.Trace {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", p.Time, p.Wind, p.Demand, p.Utility)
		}
		return tw.Flush()
	}
	return nil
}
