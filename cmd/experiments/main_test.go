package main

import (
	"os"
	"path/filepath"
	"testing"

	"iscope/internal/experiments"
)

func TestRunOneAllTargets(t *testing.T) {
	opt := experiments.QuickOptions(3)
	dir := t.TempDir()
	for _, tgt := range []string{"table1", "table2", "fig4", "fig10", "percore"} {
		if err := runOne(tgt, opt, dir, dir); err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
	}
	if err := runOne("fig8", opt, dir, dir); err != nil {
		t.Fatalf("fig8: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig8.csv")); err != nil {
		t.Fatalf("fig8 CSV not written: %v", err)
	}
}

func TestRunOneUnknownTarget(t *testing.T) {
	if err := runOne("fig99", experiments.QuickOptions(1), "", ""); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestPlotBundleWritten(t *testing.T) {
	dir := t.TempDir()
	if err := runOne("fig9", experiments.QuickOptions(4), "", dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig9.dat", "fig9.gp"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
	}
}
