// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all                 # everything, 1/5 scale
//	experiments -run fig8 -scale paper   # one figure at full 4800 CPUs
//	experiments -run fig5,fig6 -seed 7
//	experiments -run fig8 -manifest .cells -retries 2 -cell-timeout 10m
//	experiments -daemon http://127.0.0.1:8080 -jobs 600 -procs 240
//
// Available targets: table1, table2, fig4, fig5, fig6, fig7, fig8,
// fig9, fig10, ablations, online, percore, brownout, telemetry, all.
//
// With -daemon URL the command skips the local pipeline and instead
// runs a per-scheme comparison against a live iscoped daemon: one
// tenant per Table 2 scheme, an identical workload streamed into all
// of them in interleaved batches, then a side-by-side result table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"iscope"
	"iscope/internal/experiments"
	"iscope/internal/profiles"
	"iscope/internal/service"
)

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated targets (table1,table2,fig4..fig10,ablations,online,percore,brownout,telemetry,all)")
		scale   = flag.String("scale", "default", "experiment scale: quick, default, paper")
		seed    = flag.Uint64("seed", 42, "master random seed")
		procs   = flag.Int("procs", 0, "override fleet size")
		jobs    = flag.Int("jobs", 0, "override job count")
		csvDir  = flag.String("csvdir", "", "also write machine-readable CSVs into this directory")
		plotDir = flag.String("plotdir", "", "also write gnuplot bundles (.dat + .gp) into this directory")

		parallel    = flag.Int("parallel", 0, "worker count for each cell's sharded scheduling kernels (0/1 = serial; results are bit-identical for every value)")
		cellTimeout = flag.Duration("cell-timeout", 0, "wall-clock budget per grid cell (0 = unlimited)")
		retries     = flag.Int("retries", 0, "extra attempts for a failed grid cell")
		manifestDir = flag.String("manifest", "", "persist completed grid cells here; an interrupted run resumes only the missing ones")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		execTrace  = flag.String("trace", "", "write a runtime execution trace to this file")

		daemonURL  = flag.String("daemon", "", "iscoped base URL: run the per-scheme comparison against a live daemon instead of the local pipeline")
		rpcTimeout = flag.Duration("rpc-timeout", 30*time.Second, "per-request timeout for daemon calls (with -daemon)")
		rpcRetries = flag.Int("rpc-retries", 5, "retry budget per daemon call for transport errors and 503s (with -daemon); submissions carry idempotency keys, so retries never duplicate jobs")
	)
	flag.Parse()

	var opt experiments.Options
	switch *scale {
	case "quick":
		opt = experiments.QuickOptions(*seed)
	case "default":
		opt = experiments.DefaultOptions(*seed)
	case "paper":
		opt = experiments.PaperOptions(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *procs > 0 {
		opt.NumProcs = *procs
	}
	if *jobs > 0 {
		opt.NumJobs = *jobs
	}
	opt.CellTimeout = *cellTimeout
	opt.CellRetries = *retries
	opt.SimWorkers = *parallel

	// SIGINT/SIGTERM cancels the grid cooperatively: in-flight cells
	// stop, completed ones stay in the manifest, and a re-run with the
	// same -manifest resumes only the missing cells.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opt.Context = ctx

	if *daemonURL != "" {
		c := &service.Client{BaseURL: *daemonURL, Timeout: *rpcTimeout, Retries: *rpcRetries}
		if err := runDaemon(ctx, c, opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}

	targets := strings.Split(*run, ",")
	if *run == "all" {
		targets = []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablations", "online", "percore", "brownout", "telemetry"}
	}

	// Profiles flush on every exit path below — including the
	// signal-cancelled one, which returns through the same code —
	// so an interrupted grid still leaves usable collector output.
	prof, err := profiles.Start(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	code := runAll(targets, opt, *csvDir, *plotDir, *manifestDir)
	if err := prof.Stop(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	if code != 0 {
		os.Exit(code)
	}
}

// runDaemon is the -daemon mode: the Table 2 scheme comparison run
// remotely. One tenant per scheme is created on the daemon, the same
// synthesized workload is streamed into all of them in interleaved
// batches (exercising the multiplexer the way concurrent clients
// would), and the sealed results are printed side by side.
func runDaemon(ctx context.Context, c *service.Client, opt experiments.Options) error {
	const (
		spanDays = 2.0
		huFrac   = 0.3
		batch    = 128
	)
	maxW := opt.NumProcs / 2
	if maxW < 1 {
		maxW = 1
	}
	tr, err := iscope.SynthesizeWorkload(opt.Seed, opt.NumJobs, maxW, spanDays, huFrac)
	if err != nil {
		return err
	}
	subs := make([]service.JobSubmission, len(tr.Jobs))
	for i, j := range tr.Jobs {
		subs[i] = service.JobSubmission{
			ID: j.ID, At: float64(j.Submit), Runtime: float64(j.Runtime),
			Procs: j.Procs, Boundness: j.Boundness, Deadline: float64(j.Deadline),
		}
	}

	schemes := iscope.Schemes()
	tenantName := func(s iscope.Scheme) string { return "exp-" + s.Name }
	for _, s := range schemes {
		spec := service.TenantSpec{
			Name:      tenantName(s),
			Scheme:    s.Name,
			Seed:      opt.Seed,
			FleetSeed: opt.Seed,
			Procs:     opt.NumProcs,
			Wind:      &service.WindSpec{Seed: opt.Seed + 2, Days: spanDays*2 + 2, MeanFrac: 0.5},
			Workers:   opt.SimWorkers,
		}
		if _, err := c.CreateTenant(ctx, spec); err != nil {
			return fmt.Errorf("create tenant %q: %w", spec.Name, err)
		}
	}
	for i := 0; i < len(subs); i += batch {
		j := i + batch
		if j > len(subs) {
			j = len(subs)
		}
		for _, s := range schemes {
			if _, err := c.Submit(ctx, tenantName(s), subs[i:j]); err != nil {
				return fmt.Errorf("stream jobs [%d,%d) into %q: %w", i, j, tenantName(s), err)
			}
		}
	}

	fmt.Printf("==== remote scheme comparison via %s (procs=%d jobs=%d seed=%d) ====\n",
		c.BaseURL, opt.NumProcs, opt.NumJobs, opt.Seed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tjobs\tviol\tutility\twind\tutilized\tcost\tvariance")
	for _, s := range schemes {
		name := tenantName(s)
		if err := c.Seal(ctx, name); err != nil {
			return fmt.Errorf("seal %q: %w", name, err)
		}
		res, err := c.Result(ctx, name)
		if err != nil {
			return fmt.Errorf("result for %q: %w", name, err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%s\t%.1f%%\t%s\t%.2f h^2\n",
			s.Name, res.JobsCompleted, res.DeadlineViolations,
			res.UtilityEnergy, res.WindEnergy, 100*res.WindUtilization,
			res.Cost, res.UtilVariance)
		if err := c.DeleteTenant(ctx, name); err != nil {
			return fmt.Errorf("delete %q: %w", name, err)
		}
	}
	return tw.Flush()
}

// runAll drives every requested target and returns the process exit
// code, so main can flush the profiling collectors before exiting.
func runAll(targets []string, opt experiments.Options, csvDir, plotDir, manifestDir string) int {
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	for _, tgt := range targets {
		tgt = strings.TrimSpace(tgt)
		if manifestDir != "" {
			// One manifest subdirectory per target: cell keys are only
			// unique within a figure's grid.
			opt.ManifestDir = filepath.Join(manifestDir, tgt)
		}
		if err := runOne(tgt, opt, csvDir, plotDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", tgt, err)
			if errors.Is(err, context.Canceled) && manifestDir != "" {
				fmt.Fprintf(os.Stderr, "experiments: completed cells saved; re-run with -manifest %s to resume\n", manifestDir)
			}
			return 1
		}
	}
	return 0
}

// csvWriter is implemented by every figure result with a CSV dump.
type csvWriter interface {
	WriteCSV(w io.Writer) error
}

// writeCSV dumps a result to <dir>/<target>.csv when dir is set.
func writeCSV(dir, target string, r csvWriter) error {
	if dir == "" || r == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, target+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteCSV(f)
}

// plotter is implemented by figure results with a gnuplot bundle.
type plotter interface {
	WriteGnuplot(dir string) error
}

func writePlot(dir string, r plotter) error {
	if dir == "" || r == nil {
		return nil
	}
	return r.WriteGnuplot(dir)
}

func runOne(target string, opt experiments.Options, csvDir, plotDir string) error {
	start := time.Now()
	fmt.Printf("==== %s (procs=%d jobs=%d seed=%d) ====\n", target, opt.NumProcs, opt.NumJobs, opt.Seed)
	var err error
	switch target {
	case "table1":
		err = experiments.WriteTable1(os.Stdout)
	case "table2":
		err = experiments.WriteTable2(os.Stdout)
	case "fig4":
		var r *experiments.Fig4Result
		if r, err = experiments.Fig4(opt); err == nil {
			if err = r.WriteText(os.Stdout); err == nil {
				err = writeCSV(csvDir, "fig4", r)
			}
		}
	case "fig5":
		var r *experiments.Fig5Result
		if r, err = experiments.Fig5(opt); err == nil {
			if err = r.WriteText(os.Stdout); err == nil {
				err = writeCSV(csvDir, "fig5", r)
			}
			if err == nil {
				err = writePlot(plotDir, r)
			}
		}
	case "fig6":
		var r *experiments.Fig6Result
		if r, err = experiments.Fig6(opt); err == nil {
			if err = r.WriteText(os.Stdout); err == nil {
				err = writeCSV(csvDir, "fig6", r)
			}
			if err == nil {
				err = writePlot(plotDir, r)
			}
		}
	case "fig7":
		var r *experiments.Fig7Result
		if r, err = experiments.Fig7(opt); err == nil {
			if err = r.WriteText(os.Stdout); err == nil {
				err = writeCSV(csvDir, "fig7", r)
			}
			if err == nil {
				err = writePlot(plotDir, r)
			}
		}
	case "fig8":
		var r *experiments.Fig8Result
		if r, err = experiments.Fig8(opt); err == nil {
			if err = r.WriteText(os.Stdout); err == nil {
				err = writeCSV(csvDir, "fig8", r)
			}
			if err == nil {
				err = writePlot(plotDir, r)
			}
		}
	case "fig9":
		var r *experiments.Fig9Result
		if r, err = experiments.Fig9(opt); err == nil {
			if err = r.WriteText(os.Stdout); err == nil {
				err = writeCSV(csvDir, "fig9", r)
			}
			if err == nil {
				err = writePlot(plotDir, r)
			}
		}
	case "fig10":
		var r *experiments.Fig10Result
		if r, err = experiments.Fig10(opt); err == nil {
			if err = r.WriteText(os.Stdout); err == nil {
				err = writeCSV(csvDir, "fig10", r)
			}
			if err == nil {
				err = writePlot(plotDir, r)
			}
		}
	case "ablations":
		var r *experiments.AblationResult
		if r, err = experiments.Ablations(opt); err == nil {
			err = r.WriteText(os.Stdout)
		}
	case "online":
		var r *experiments.OnlineStudyResult
		if r, err = experiments.OnlineStudy(opt); err == nil {
			err = r.WriteText(os.Stdout)
		}
	case "percore":
		var r *experiments.PerCoreStudyResult
		if r, err = experiments.PerCoreStudy(opt); err == nil {
			err = r.WriteText(os.Stdout)
		}
	case "brownout":
		var r *experiments.BrownoutStudyResult
		if r, err = experiments.BrownoutStudy(opt); err == nil {
			err = r.WriteText(os.Stdout)
		}
	case "telemetry":
		var r *experiments.TelemetryStudyResult
		if r, err = experiments.TelemetryStudy(opt); err == nil {
			if err = r.WriteText(os.Stdout); err == nil {
				err = writeCSV(csvDir, "telemetry", r)
			}
		}
	default:
		return fmt.Errorf("unknown target (want table1, table2, fig4..fig10, ablations, online, percore, brownout, telemetry, all)")
	}
	if err != nil {
		return err
	}
	fmt.Printf("---- %s done in %v ----\n\n", target, time.Since(start).Round(time.Millisecond))
	return nil
}
