// Command windgen synthesizes an NREL-style wind power trace and writes
// it as CSV (time_s,power_w), printing summary statistics.
//
// Usage:
//
//	windgen -days 7 -seed 42 -out wind.csv
//	windgen -days 1 -stats-only
package main

import (
	"flag"
	"fmt"
	"os"

	"iscope/internal/units"
	"iscope/internal/wind"
)

func main() {
	var (
		days      = flag.Float64("days", 7, "trace length in days")
		seed      = flag.Uint64("seed", 42, "random seed")
		out       = flag.String("out", "", "output CSV path (default stdout)")
		statsOnly = flag.Bool("stats-only", false, "print statistics without the trace")
		scale     = flag.Float64("scale", 1, "extra scale factor (SWP multiplier)")
		turbines  = flag.Int("turbines", 0, "override turbine count")
	)
	flag.Parse()

	cfg := wind.DefaultConfig(*seed, units.Days(*days))
	if *turbines > 0 {
		cfg.NumTurbines = *turbines
	}
	tr, err := wind.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "windgen: %v\n", err)
		os.Exit(1)
	}
	if *scale != 1 {
		tr = tr.Scale(*scale)
	}

	fmt.Fprintf(os.Stderr, "windgen: %d samples @ %s, mean %s, peak %s, energy %s\n",
		tr.Len(), tr.Interval, tr.Mean(), tr.Peak(), tr.Energy())

	if *statsOnly {
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "windgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintf(os.Stderr, "windgen: %v\n", err)
		os.Exit(1)
	}
}
