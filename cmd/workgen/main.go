// Command workgen synthesizes an LLNL-Thunder-like workload trace and
// writes it in Standard Workload Format, printing summary statistics.
//
// Usage:
//
//	workgen -jobs 4000 -days 3 -out thunder-like.swf
//	workgen -jobs 500 -maxprocs 512 -stats-only
package main

import (
	"flag"
	"fmt"
	"os"

	"iscope/internal/units"
	"iscope/internal/workload"
)

func main() {
	var (
		jobs      = flag.Int("jobs", 4000, "number of jobs")
		days      = flag.Float64("days", 3, "arrival window in days")
		maxProcs  = flag.Int("maxprocs", 4096, "maximum requested CPUs per job")
		seed      = flag.Uint64("seed", 42, "random seed")
		out       = flag.String("out", "", "output SWF path (default stdout)")
		statsOnly = flag.Bool("stats-only", false, "print statistics without the trace")
	)
	flag.Parse()

	cfg := workload.DefaultSynthConfig(*seed, *jobs)
	cfg.Span = units.Days(*days)
	cfg.MaxProcs = *maxProcs
	tr, err := workload.Synthesize(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "workgen: %v\n", err)
		os.Exit(1)
	}

	st := tr.ComputeStats()
	fmt.Fprintf(os.Stderr, "workgen: %d jobs over %s, mean runtime %s, max width %d CPUs, total work %s CPU-time\n",
		st.Jobs, st.Span, st.MeanRuntime, st.MaxProcs, st.TotalWork)

	if *statsOnly {
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "workgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	header := fmt.Sprintf("Synthetic LLNL-Thunder-like trace\njobs: %d, span: %g days, seed: %d", *jobs, *days, *seed)
	if err := workload.WriteSWF(w, tr, header); err != nil {
		fmt.Fprintf(os.Stderr, "workgen: %v\n", err)
		os.Exit(1)
	}
}
