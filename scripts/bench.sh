#!/usr/bin/env bash
# Runs the benchmark-regression suite and converts the results to the
# BENCH_PR10.json format (see DESIGN.md, "Benchmark baseline format").
#
# Usage:
#   scripts/bench.sh                    # writes BENCH_PR10_after.json
#   OUT=BENCH_PR10.json scripts/bench.sh # choose the output file
#   COUNT=10 scripts/bench.sh           # more repetitions
#   FULL=1 scripts/bench.sh             # include the 48,000- and 1,000,000-proc tiers
#   BASELINE=BENCH_PR10.json scripts/bench.sh   # also gate vs baseline
#
# Environment:
#   COUNT    benchmark repetitions per name (default 5)
#   BENCH    benchmark selector regex (default: the gated names)
#   OUT      output JSON path (default BENCH_PR10_after.json)
#   RAW      keep the raw `go test` output here (default: tempfile, printed)
#   FULL     when set, drop -short so the 48,000- and 1,000,000-proc sub-benchmarks run
#            (the nightly workflow's mode; they take minutes per rep)
#   BASELINE when set, additionally run the regression gate against it
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCH="${BENCH:-^(BenchmarkScanChip|BenchmarkSimulationRun|BenchmarkFleetGeneration|BenchmarkSimulationRunLarge)\$}"
OUT="${OUT:-BENCH_PR10_after.json}"
RAW="${RAW:-$(mktemp /tmp/bench_raw.XXXXXX.txt)}"
SHORT="-short"
if [[ -n "${FULL:-}" ]]; then
    SHORT=""
fi

echo ">> running: go test ${SHORT} -run '^\$' -bench '${BENCH}' -benchmem -count ${COUNT} ."
# shellcheck disable=SC2086  # SHORT is intentionally word-split (flag or empty)
go test ${SHORT} -run '^$' -bench "${BENCH}" -benchmem -count "${COUNT}" . | tee "${RAW}"

go run ./cmd/benchjson -o "${OUT}" < "${RAW}"
echo ">> wrote ${OUT} (raw output kept at ${RAW})"

if [[ -n "${BASELINE:-}" ]]; then
    echo ">> gating against ${BASELINE}"
    go run ./cmd/benchjson -baseline "${BASELINE}" < "${RAW}"
fi
