#!/usr/bin/env bash
# Runs the benchmark-regression suite and converts the results to the
# BENCH_PR4.json format (see DESIGN.md, "Benchmark baseline format").
#
# Usage:
#   scripts/bench.sh                    # writes BENCH_PR4_after.json
#   OUT=BENCH_PR4.json scripts/bench.sh # choose the output file
#   COUNT=10 scripts/bench.sh           # more repetitions
#   BASELINE=BENCH_PR4_after.json scripts/bench.sh   # also gate vs baseline
#
# Environment:
#   COUNT    benchmark repetitions per name (default 5)
#   BENCH    benchmark selector regex (default: the three gated names)
#   OUT      output JSON path (default BENCH_PR4_after.json)
#   RAW      keep the raw `go test` output here (default: tempfile, printed)
#   BASELINE when set, additionally run the regression gate against it
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCH="${BENCH:-^(BenchmarkScanChip|BenchmarkSimulationRun|BenchmarkFleetGeneration)\$}"
OUT="${OUT:-BENCH_PR4_after.json}"
RAW="${RAW:-$(mktemp /tmp/bench_raw.XXXXXX.txt)}"

echo ">> running: go test -run '^\$' -bench '${BENCH}' -benchmem -count ${COUNT} ."
go test -run '^$' -bench "${BENCH}" -benchmem -count "${COUNT}" . | tee "${RAW}"

go run ./cmd/benchjson -o "${OUT}" < "${RAW}"
echo ">> wrote ${OUT} (raw output kept at ${RAW})"

if [[ -n "${BASELINE:-}" ]]; then
    echo ">> gating against ${BASELINE}"
    go run ./cmd/benchjson -baseline "${BASELINE}" < "${RAW}"
fi
