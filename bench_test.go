package iscope

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus micro-
// benchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark executes the full experiment at QuickScale;
// the printed result tables come from cmd/experiments instead.

import (
	"fmt"
	"testing"

	"iscope/internal/binning"
	"iscope/internal/experiments"
	"iscope/internal/power"
	"iscope/internal/profiling"
	"iscope/internal/rng"
	"iscope/internal/scheduler"
	"iscope/internal/units"
	"iscope/internal/variation"
)

// BenchmarkTable1Binning measures factory binning of a 4800-chip fleet
// (Table 1's process applied to the paper's datacenter).
func BenchmarkTable1Binning(b *testing.B) {
	m, err := variation.NewModel(variation.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	chips := m.GenerateFleet(4800)
	tbl := power.DefaultTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binning.Assign(chips, tbl, 3, binning.DefaultFactoryGuard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Profiling regenerates Figure 4 (16-core A10 MinVdd scan).
func BenchmarkFig4Profiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(experiments.QuickOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5UtilityOnly regenerates Figure 5 (utility-only energy
// sweeps over %HU and arrival rate, five schemes).
func BenchmarkFig5UtilityOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(experiments.QuickOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6WindUtility regenerates Figure 6 (wind+utility sweeps).
func BenchmarkFig6WindUtility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(experiments.QuickOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7PowerTrace regenerates Figure 7 (350-second-sampled
// power traces of the three Scan schemes).
func BenchmarkFig7PowerTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(experiments.QuickOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8EnergyCost regenerates Figure 8 (energy cost per scheme,
// with and without wind).
func BenchmarkFig8EnergyCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(experiments.QuickOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9LifetimeBalance regenerates Figure 9 (utilization-time
// variance across the SWP sweep).
func BenchmarkFig9LifetimeBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(experiments.QuickOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10ProfilingOverhead regenerates Figure 10 and the Section
// VI.E profiling-cost table.
func BenchmarkFig10ProfilingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(experiments.QuickOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkScanChip measures one full-chip descending-voltage scan.
func BenchmarkScanChip(b *testing.B) {
	m, err := variation.NewModel(variation.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	chips := m.GenerateFleet(256)
	tbl := benchVT{power.DefaultTable()}
	tester := profiling.NewTester(chips, tbl, 0, rng.Named(1, "bench"))
	sc, err := profiling.NewScanner(profiling.DefaultConfig(), tester, tbl, profiling.NewDB(len(chips), tbl.NumLevels()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.ScanChip(i%len(chips), 0)
	}
}

type benchVT struct{ *power.Table }

func (t benchVT) VnomAt(l int) units.Volts { return t.Levels[l].Vnom }

// BenchmarkSimulationRun measures one complete ScanFair simulation at
// quick scale (fleet build excluded).
func BenchmarkSimulationRun(b *testing.B) {
	fleet, err := scheduler.BuildFleet(scheduler.DefaultFleetSpec(1, 96))
	if err != nil {
		b.Fatal(err)
	}
	jobs, err := SynthesizeWorkload(2, 240, 64, 1, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	w, err := GenerateWind(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	w = w.Scale(96.0 / 4800.0)
	sch, _ := scheduler.SchemeByName("ScanFair")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scheduler.Run(fleet, sch, scheduler.RunConfig{Seed: uint64(i), Jobs: jobs, Wind: w}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationRunLarge is the fleet-scale tier: one complete
// ScanFair simulation with rebalancing at the paper's 4,800-proc
// datacenter size, swept over worker counts. The 48,000-proc and
// million-proc decade-up sub-benchmarks are skipped under -short so PR
// CI runs the 4,800 tier and the nightly workflow runs the rest.
// Because results are bit-identical for every worker count (see
// internal/scheduler/parallel.go), the sweep measures only the
// sharding speedup, never a behaviour change. The million-proc tier
// exists to exercise the structure-of-arrays cluster state, the
// calendar event queue and the incremental order maintenance at the
// scale they were built for; its job count is sub-proportional so a
// rep stays within a nightly-runner budget.
func BenchmarkSimulationRunLarge(b *testing.B) {
	for _, size := range []struct {
		procs, jobs int
		short       bool
	}{
		{procs: 4800, jobs: 12000, short: false},
		{procs: 48000, jobs: 120000, short: true},
		{procs: 1_000_000, jobs: 250_000, short: true},
	} {
		if size.short && testing.Short() {
			// Don't pay the 48,000-chip fleet build just to skip its
			// sub-benchmarks.
			continue
		}
		fleet, err := scheduler.BuildFleet(scheduler.DefaultFleetSpec(1, size.procs))
		if err != nil {
			b.Fatal(err)
		}
		jobs, err := SynthesizeWorkload(2, size.jobs, 64, 1, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		w, err := GenerateWind(3, 1)
		if err != nil {
			b.Fatal(err)
		}
		w = w.Scale(float64(size.procs) / 4800.0)
		sch, _ := scheduler.SchemeByName("ScanFair")
		workerSweep := []int{1, 2, 4, 8}
		if size.short {
			workerSweep = []int{1, 8}
		}
		for _, workers := range workerSweep {
			name := fmt.Sprintf("procs=%d/workers=%d", size.procs, workers)
			b.Run(name, func(b *testing.B) {
				cfg := scheduler.RunConfig{
					Seed:            1,
					Jobs:            jobs,
					Wind:            w,
					EnableRebalance: true,
					Workers:         workers,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := scheduler.Run(fleet, sch, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFleetGeneration measures chip generation throughput.
func BenchmarkFleetGeneration(b *testing.B) {
	m, err := variation.NewModel(variation.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GenerateChip(i)
	}
}

// BenchmarkAblations runs the full design-choice ablation suite
// (guardband, theta, bin granularity, matching, battery, oracle,
// aging) at quick scale.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablations(experiments.QuickOptions(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindGeneration measures renewable trace synthesis.
func BenchmarkWindGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWind(uint64(i), 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadSynthesis measures Thunder-like trace generation.
func BenchmarkWorkloadSynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SynthesizeWorkload(uint64(i), 2000, 512, 2, 0.3); err != nil {
			b.Fatal(err)
		}
	}
}
