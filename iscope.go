// Package iscope is a from-scratch Go implementation of iScope, the
// hardware profile-guided power-management framework for green
// (renewable-powered) datacenters described in:
//
//	Tang, Wang, Liu, Zhang, Li, Liang.
//	"Exploring Hardware Profile-Guided Green Datacenter Scheduling."
//	ICPP 2015.
//
// iScope combines two levels of control:
//
//   - micro: an in-cloud scanner (software-based functional failing
//     tests plus descending-voltage sweeps) exposes each processor's
//     process variation and recoverable voltage margin to the facility
//     scheduler;
//   - macro: variation-aware scheduling schemes match the datacenter's
//     power demand to a time-varying renewable budget, buying only the
//     residual from the utility grid, while balancing processor
//     lifetime.
//
// This root package is the public API: it re-exports the building
// blocks (fleet construction, the Table 2 schemes, simulation runs,
// trace generation) and the experiment drivers that regenerate every
// table and figure of the paper's evaluation. The implementation lives
// in internal/ packages:
//
//	internal/variation   VARIUS-style process-variation substrate
//	internal/power       Eq-1/2/3 power, cooling and timing models
//	internal/binning     factory speed/efficiency binning (Table 1)
//	internal/profiling   the iScope scanner, profile DB, scan planning
//	internal/wind        synthetic NREL-like wind power + trace I/O
//	internal/workload    SWF parsing + synthetic LLNL-Thunder workloads
//	internal/simulator   deterministic discrete-event engine
//	internal/cluster     datacenter model (processors, queues, DVFS)
//	internal/scheduler   the five schemes and the power-matching loop
//	internal/metrics     energy accounting, sampling, variance
//	internal/experiments one driver per paper table/figure
package iscope

import (
	"context"
	"io"

	"iscope/internal/battery"
	"iscope/internal/brownout"
	"iscope/internal/experiments"
	"iscope/internal/faults"
	"iscope/internal/invariants"
	"iscope/internal/metrics"
	"iscope/internal/profiling"
	"iscope/internal/scheduler"
	"iscope/internal/solar"
	"iscope/internal/telemetry"
	"iscope/internal/units"
	"iscope/internal/wind"
	"iscope/internal/workload"
)

// Re-exported core types. Aliases keep the public surface thin while
// the implementation stays in internal packages.
type (
	// Fleet is a built hardware population: ground-truth chips, power
	// model, factory binning and a completed scan database.
	Fleet = scheduler.Fleet
	// FleetSpec configures fleet generation.
	FleetSpec = scheduler.FleetSpec
	// Scheme is one of Table 2's profiling x scheduling combinations.
	Scheme = scheduler.Scheme
	// RunConfig parametrizes a simulation run.
	RunConfig = scheduler.RunConfig
	// Result is a run's measurements: energy split, cost, deadline
	// violations, utilization balance, optional power trace.
	Result = scheduler.Result
	// WorkloadTrace is a stream of jobs (SWF-compatible).
	WorkloadTrace = workload.Trace
	// Job is one datacenter task.
	Job = workload.Job
	// WindTrace is a sampled renewable power series.
	WindTrace = wind.Trace
	// Prices is the utility/wind tariff pair.
	Prices = metrics.Prices
	// TracePoint is one sample of a power trace.
	TracePoint = metrics.TracePoint
	// Seconds is simulated time.
	Seconds = units.Seconds
	// Watts is power.
	Watts = units.Watts
	// Joules is energy.
	Joules = units.Joules
	// USD is money.
	USD = units.USD
)

// DefaultFleetSpec returns the paper's datacenter configuration scaled
// to numProcs processors (the paper models 4800).
func DefaultFleetSpec(seed uint64, numProcs int) FleetSpec {
	return scheduler.DefaultFleetSpec(seed, numProcs)
}

// BuildFleet generates chips, bins them, and runs a full iScope scan.
func BuildFleet(spec FleetSpec) (*Fleet, error) { return scheduler.BuildFleet(spec) }

// Schemes returns the paper's five schemes (Table 2): BinRan, BinEffi,
// ScanRan, ScanEffi and ScanFair (the iScope default).
func Schemes() []Scheme { return scheduler.Schemes() }

// SchemeByName resolves a scheme by its Table 2 name (plus the BinFair
// ablation).
func SchemeByName(name string) (Scheme, bool) { return scheduler.SchemeByName(name) }

// Run simulates one scheme over a fleet and workload.
func Run(fleet *Fleet, scheme Scheme, cfg RunConfig) (*Result, error) {
	return scheduler.Run(fleet, scheme, cfg)
}

// RunCtx is Run with cooperative cancellation: when ctx is canceled the
// simulation stops at the next event boundary, writes a final snapshot
// through RunConfig.Checkpoint (when configured) and returns the
// context's error. A run resumed from such a snapshot finishes with
// results bit-identical to an uninterrupted one.
func RunCtx(ctx context.Context, fleet *Fleet, scheme Scheme, cfg RunConfig) (*Result, error) {
	return scheduler.RunCtx(ctx, fleet, scheme, cfg)
}

// CheckpointConfig enables periodic snapshots of the full simulation
// state (RunConfig.Checkpoint): every Every simulated seconds the
// scheduler serializes its state into a versioned, checksummed blob and
// hands it to Sink. Feed such a blob back through RunConfig.Resume to
// continue the run from where it stopped.
type CheckpointConfig = scheduler.CheckpointConfig

// Stepper is the simulation engine exposed one event at a time:
// HasPendingEvents / PeekNextEventTime / ProcessNextEvent / InjectJob,
// plus AdvanceTo, Seal, Snapshot and Result. Run is a thin driver over
// it, and a drained stepper's results and checkpoint bytes are
// bit-identical to the equivalent batch Run — including jobs injected
// mid-run, which merge into the event order exactly where a batch
// trace would have put them. See DESIGN.md §8.
type Stepper = scheduler.Stepper

// StepStatus is a stepper's live view: virtual clock, job and event
// counts, sealed/finished flags, energy split, brownout stage and
// invariant violations.
type StepStatus = scheduler.StepStatus

// NewStepper builds a steppable simulation from the same inputs as
// Run. cfg.Jobs may be nil for a purely streamed run that receives
// every job through InjectJob.
func NewStepper(fleet *Fleet, scheme Scheme, cfg RunConfig) (*Stepper, error) {
	return scheduler.NewStepper(fleet, scheme, cfg)
}

// SynthesizeWorkload generates an LLNL-Thunder-like job trace with
// deadlines assigned: huFraction of jobs are high-urgency (deadline
// ~4x runtime), the rest low-urgency (~12x).
func SynthesizeWorkload(seed uint64, jobs, maxProcs int, spanDays, huFraction float64) (*WorkloadTrace, error) {
	cfg := workload.DefaultSynthConfig(seed, jobs)
	cfg.MaxProcs = maxProcs
	cfg.Span = units.Days(spanDays)
	tr, err := workload.Synthesize(cfg)
	if err != nil {
		return nil, err
	}
	if err := tr.AssignDeadlines(workload.DefaultDeadlines(seed+1, huFraction)); err != nil {
		return nil, err
	}
	return tr, nil
}

// ReadSWF ingests a Parallel Workloads Archive trace in Standard
// Workload Format (e.g. the LLNL Thunder log the paper evaluates).
// Deadlines still need AssignDeadlines.
func ReadSWF(r io.Reader, completedOnly bool, maxJobs int) (*WorkloadTrace, error) {
	return workload.ReadSWF(r, workload.SWFReadOptions{CompletedOnly: completedOnly, MaxJobs: maxJobs})
}

// AssignDeadlines classifies jobs HU/LU and sets deadlines, in place.
func AssignDeadlines(tr *WorkloadTrace, seed uint64, huFraction float64) error {
	return tr.AssignDeadlines(workload.DefaultDeadlines(seed, huFraction))
}

// GenerateWind synthesizes a wind power trace of the given length,
// 10-minute sampled, NREL-style, scaled to 3.5% of the farm as in the
// paper.
func GenerateWind(seed uint64, days float64) (*WindTrace, error) {
	return wind.Generate(wind.DefaultConfig(seed, units.Days(days)))
}

// ReadWindCSV ingests a time_s,power_w trace (a resampled NREL site).
func ReadWindCSV(r io.Reader) (*WindTrace, error) { return wind.ReadCSV(r) }

// DefaultPrices returns the paper's tariffs: utility $0.13/kWh,
// wind $0.05/kWh.
func DefaultPrices() Prices { return metrics.DefaultPrices() }

// BatterySpec sizes optional on-site storage (RunConfig.Battery).
type BatterySpec = battery.Spec

// OnlineProfiling enables in-simulation opportunistic scanning
// (RunConfig.Online): the datacenter starts on factory-bin knowledge
// and profiles idle processors during low-utilization windows,
// converging to scan knowledge while serving the workload — the
// deployment flow of the paper's Section III.C. The zero value uses
// the 29-second functional failing test at 115 W, a 30% utilization
// threshold and a 10% concurrent-scan cap.
type OnlineProfiling = scheduler.OnlineProfiling

// DefaultBattery returns a lithium-ion-like battery of the given
// capacity (C/2 power rating, 81% round trip).
func DefaultBattery(capacityKWh float64) BatterySpec {
	return battery.DefaultSpec(units.FromKWh(capacityKWh))
}

// FaultSpec parametrizes deterministic fault injection
// (RunConfig.Faults): processor crash/repair cycles, renewable dropout
// and forecast-error windows, scanner false-pass escapes with runtime
// margin violations, and battery capacity fade. The zero value (or a
// nil RunConfig.Faults) disables injection entirely and leaves the run
// bit-identical to a fault-free one.
type FaultSpec = faults.Spec

// FaultStats is the degradation ledger of a faulted run
// (Result.Faults): crash/requeue/re-execution counters, lost work,
// derated renewable energy, fallback-voltage and repair hours.
type FaultStats = metrics.FaultStats

// DefaultFaultSpec returns a production-plausible fault environment:
// monthly per-node crashes, two supply dropouts per day with 15%
// forecast error, a 2% scanner false-pass escape rate and 1%/day
// battery fade.
func DefaultFaultSpec() FaultSpec { return faults.DefaultSpec() }

// TelemetrySpec parametrizes the deterministic sensor-and-estimation
// layer (RunConfig.Telemetry): per-node aggregate power sensors with
// gaussian read noise, calibration drift, quantization, and injectable
// sensor faults (dropouts, stuck-at readings, spike transients), plus
// the disaggregator that turns node aggregates back into the per-
// processor estimates the scheduler acts on. A nil RunConfig.Telemetry
// — or any spec with every error source at zero — leaves the run
// bit-identical to the oracle (true-power) path.
type TelemetrySpec = telemetry.Spec

// TelemetryStats is the sensor layer's ledger (Result.Telemetry):
// samples taken, estimation-error statistics, dropout staleness time,
// and the misestimation guard's trip count and degraded dwell.
type TelemetryStats = metrics.TelemetryStats

// DefaultTelemetrySpec returns a production-plausible sensor
// environment: 60 s sampling, 2% read noise, up to 1%/day calibration
// drift, 5 W quantization, one node sensor per four processors, rare
// dropouts and spikes, and a 15% misestimation guard margin.
func DefaultTelemetrySpec() TelemetrySpec { return telemetry.DefaultSpec() }

// ParseTelemetrySpec parses a "key=value,key=value" sensor-environment
// string (keys interval, noise, drift, quant, node, dropouts, dropmean,
// stuck, spikes, spikemag, margin, horizon) on top of the defaults —
// the -telemetry-spec CLI format.
func ParseTelemetrySpec(spec string) (TelemetrySpec, error) { return telemetry.ParseSpec(spec) }

// BrownoutConfig parametrizes the staged-degradation ladder
// (RunConfig.Brownout): under a sustained supply deficit the scheduler
// climbs through DVFS down-leveling, admission deferral, a battery
// reserve floor and priority-ordered load shedding, then unwinds one
// stage at a time after a recovery dwell. The zero value uses the
// default thresholds and dwells.
type BrownoutConfig = brownout.Config

// BrownoutStats is the ladder's ledger (Result.Brownout): stage
// transitions and dwell, per-stage grid energy, and the count/cost of
// every degradation action taken.
type BrownoutStats = metrics.BrownoutStats

// DefaultBrownoutConfig returns the production ladder policy.
func DefaultBrownoutConfig() BrownoutConfig { return brownout.DefaultConfig() }

// ParseBrownoutSpec parses a "key=value,key=value" ladder override
// string (keys t1..t4, up, down, reserve, downlevel, restarts, hold,
// slack) on top of the defaults — the -brownout-spec CLI format.
func ParseBrownoutSpec(spec string) (BrownoutConfig, error) { return brownout.ParseSpec(spec) }

// InvariantsConfig enables the online runtime-verification monitor
// (RunConfig.Invariants): energy conservation, SoC bounds, slice
// conservation, event-clock monotonicity and shed accounting are
// checked continuously during the run. The zero value records
// violations and reports them in Result.Invariants; FailFastInvariants
// aborts the run on the first one.
type InvariantsConfig = invariants.Config

// InvariantReport is the monitor's end-of-run summary
// (Result.Invariants): checks evaluated, violations seen, and the
// first violation's description.
type InvariantReport = invariants.Report

// Invariant monitor actions (InvariantsConfig.Action).
const (
	// RecordInvariants collects violations and keeps running.
	RecordInvariants = invariants.Record
	// FailFastInvariants aborts the run on the first violation.
	FailFastInvariants = invariants.FailFast
)

// GenerateSolar synthesizes a photovoltaic power trace (California-like
// site, 10-minute samples) compatible with RunConfig.Wind — the
// scheduler treats any renewable budget alike.
func GenerateSolar(seed uint64, days float64) (*WindTrace, error) {
	return solar.Generate(solar.DefaultConfig(seed, units.Days(days)))
}

// HybridSupply sums renewable traces (e.g. wind + solar) sample by
// sample; all traces must share one sampling interval.
func HybridSupply(traces ...*WindTrace) (*WindTrace, error) {
	return solar.Hybrid(traces...)
}

// AgingStudy evaluates periodic re-scan policies (Section III.C):
// how often the scanner must refresh profiles, and with how much
// guardband, for aging-induced margin drift to stay safe.
func AgingStudy(seed uint64, chips int) (*profiling.AgingResult, error) {
	return profiling.RunAgingStudy(profiling.DefaultAgingConfig(seed, chips))
}

// Experiment options and drivers (one per paper table/figure).
type (
	// ExperimentOptions scales the evaluation harness.
	ExperimentOptions = experiments.Options
	// Fig4Result .. Fig10Result are the structured reproductions.
	Fig4Result  = experiments.Fig4Result
	Fig5Result  = experiments.Fig5Result
	Fig6Result  = experiments.Fig6Result
	Fig7Result  = experiments.Fig7Result
	Fig8Result  = experiments.Fig8Result
	Fig9Result  = experiments.Fig9Result
	Fig10Result = experiments.Fig10Result
)

// PaperScale is the full 4800-CPU configuration of Section V.C.
func PaperScale(seed uint64) ExperimentOptions { return experiments.PaperOptions(seed) }

// DefaultScale is a 1/5-scale configuration preserving all qualitative
// results.
func DefaultScale(seed uint64) ExperimentOptions { return experiments.DefaultOptions(seed) }

// QuickScale keeps tests and benchmarks fast.
func QuickScale(seed uint64) ExperimentOptions { return experiments.QuickOptions(seed) }

// AblationResult bundles the design-choice ablations (guardband,
// ScanFair threshold, bin granularity, matching, battery sizing, the
// Oracle bound, and the aging/re-scan policy grid).
type AblationResult = experiments.AblationResult

// BrownoutStudyResult compares how the five schemes ride through an
// identical supply-deficit storm with an identical battery and ladder;
// its shed-work column quantifies how much cheaper degradation is with
// scanned hardware knowledge.
type BrownoutStudyResult = experiments.BrownoutStudyResult

// TelemetryStudyResult quantifies how the ScanEffi-over-BinEffi
// advantage degrades as power-sensor estimation error grows, and pins
// that ground-truth invariants hold at every error level.
type TelemetryStudyResult = experiments.TelemetryStudyResult

// The experiment drivers.
func Fig4(o ExperimentOptions) (*Fig4Result, error)          { return experiments.Fig4(o) }
func Fig5(o ExperimentOptions) (*Fig5Result, error)          { return experiments.Fig5(o) }
func Fig6(o ExperimentOptions) (*Fig6Result, error)          { return experiments.Fig6(o) }
func Fig7(o ExperimentOptions) (*Fig7Result, error)          { return experiments.Fig7(o) }
func Fig8(o ExperimentOptions) (*Fig8Result, error)          { return experiments.Fig8(o) }
func Fig9(o ExperimentOptions) (*Fig9Result, error)          { return experiments.Fig9(o) }
func Fig10(o ExperimentOptions) (*Fig10Result, error)        { return experiments.Fig10(o) }
func Ablations(o ExperimentOptions) (*AblationResult, error) { return experiments.Ablations(o) }
func BrownoutStudy(o ExperimentOptions) (*BrownoutStudyResult, error) {
	return experiments.BrownoutStudy(o)
}
func TelemetryStudy(o ExperimentOptions) (*TelemetryStudyResult, error) {
	return experiments.TelemetryStudy(o)
}
