// Fault injection and graceful degradation: the same wind-powered
// datacenter run twice under ScanFair — once fault-free, once under a
// dense deterministic fault plan (processor crashes, renewable
// dropouts, scanner false passes and battery fade). The program prints
// both result summaries side by side plus the degradation ledger,
// showing that every job still completes and exactly how much energy,
// cost and work the faults extracted.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"iscope"
)

func main() {
	const procs = 300
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(3, procs))
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := iscope.SynthesizeWorkload(5, 600, 128, 1.5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	wind, err := iscope.GenerateWind(9, 5)
	if err != nil {
		log.Fatal(err)
	}
	wind = wind.Scale(float64(procs) / 4800.0)
	batt := iscope.DefaultBattery(20)

	scheme, _ := iscope.SchemeByName("ScanFair")
	base := iscope.RunConfig{Seed: 2, Jobs: jobs, Wind: wind, Battery: &batt}

	clean, err := iscope.Run(fleet, scheme, base)
	if err != nil {
		log.Fatal(err)
	}

	// A denser environment than DefaultFaultSpec so a 1.5-day run
	// visibly exercises every fault class.
	spec := iscope.DefaultFaultSpec()
	spec.CrashMTBF = iscope.Seconds(2 * 86400) // a crash every ~2 node-days
	spec.DropoutsPerDay = 6
	spec.FalsePassFrac = 0.1
	spec.FadeInterval = iscope.Seconds(6 * 3600)
	spec.FadeFrac = 0.03
	faulted := base
	faulted.Faults = &spec

	dirty, err := iscope.Run(fleet, scheme, faulted)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tclean\tfaulted")
	fmt.Fprintf(tw, "jobs completed\t%d\t%d\n", clean.JobsCompleted, dirty.JobsCompleted)
	fmt.Fprintf(tw, "deadline violations\t%d\t%d\n", clean.DeadlineViolations, dirty.DeadlineViolations)
	fmt.Fprintf(tw, "makespan\t%s\t%s\n", clean.Makespan, dirty.Makespan)
	fmt.Fprintf(tw, "wind energy used\t%s\t%s\n", clean.WindEnergy, dirty.WindEnergy)
	fmt.Fprintf(tw, "utility energy\t%s\t%s\n", clean.UtilityEnergy, dirty.UtilityEnergy)
	fmt.Fprintf(tw, "energy cost\t%s\t%s\n", clean.Cost, dirty.Cost)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fs := dirty.Faults
	fmt.Println("\ndegradation ledger (faulted run):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "crashes\t%d (%d requeues, %.1f node-hours in repair)\n",
		fs.Crashes, fs.Requeues, fs.RepairHours)
	fmt.Fprintf(tw, "false-pass trips\t%d (%d re-executions, %s work discarded)\n",
		fs.FalsePassTrips, fs.ReExecutions, fs.LostWork)
	fmt.Fprintf(tw, "fallback voltage\t%.1f chip-hours awaiting re-profile (%d re-scans done)\n",
		fs.FallbackVoltHours, fs.Reprofiles)
	fmt.Fprintf(tw, "supply derating\t%s of forecast wind withheld\n", fs.DeratedEnergy)
	fmt.Fprintf(tw, "battery fade\t%d steps, %s capacity lost\n",
		fs.BatteryFadeSteps, fs.BatteryCapacityLost)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	if clean.JobsCompleted == dirty.JobsCompleted {
		fmt.Println("\nevery job completed under faults: the scheduler degraded gracefully.")
	}
}
