// Quickstart: build a small green datacenter, run the conventional
// baseline (BinRan) and iScope's default scheme (ScanFair) on the same
// workload and wind, and compare the energy bill.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"iscope"
)

func main() {
	// A 200-processor fleet: chips are generated with process variation,
	// binned as the factory would, and fully profiled by the scanner.
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(42, 200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet scanned: %d chips, %d V/F points, scan energy %s\n",
		fleet.ScanReport.Chips, fleet.ScanReport.Points, fleet.ScanReport.Energy)

	// A day of LLNL-Thunder-like jobs, 30% high-urgency.
	jobs, err := iscope.SynthesizeWorkload(7, 400, 100, 1.0, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	// Wind sized for this fleet (the default trace feeds 4800 CPUs).
	wind, err := iscope.GenerateWind(11, 3)
	if err != nil {
		log.Fatal(err)
	}
	wind = wind.Scale(200.0 / 4800.0)

	for _, name := range []string{"BinRan", "ScanFair"} {
		scheme, _ := iscope.SchemeByName(name)
		res, err := iscope.Run(fleet, scheme, iscope.RunConfig{
			Seed: 1, Jobs: jobs, Wind: wind,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s cost %s (grid %s), wind utilization %.0f%%, %d/%d deadlines missed\n",
			res.Scheme, res.Cost, res.UtilityCost, 100*res.WindUtilization,
			res.DeadlineViolations, res.JobsCompleted)
	}
}
