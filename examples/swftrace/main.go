// SWF ingestion: run iScope on a real Parallel Workloads Archive trace.
// The program reads a Standard Workload Format file (pass one with
// -trace; the LLNL Thunder log the paper evaluates works directly), or
// writes and re-reads a synthetic Thunder-like SWF file when no trace
// is given — demonstrating the full archive round trip.
//
//	go run ./examples/swftrace [-trace thunder.swf] [-jobs 500]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"iscope"
	"iscope/internal/units"
	"iscope/internal/workload"
)

func main() {
	tracePath := flag.String("trace", "", "SWF trace file (empty: generate a synthetic one)")
	maxJobs := flag.Int("jobs", 500, "maximum jobs to simulate")
	flag.Parse()

	path := *tracePath
	if path == "" {
		path = filepath.Join(os.TempDir(), "iscope-synthetic.swf")
		if err := writeSynthetic(path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no -trace given; wrote synthetic Thunder-like SWF to %s\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	jobs, err := iscope.ReadSWF(f, true, *maxJobs)
	if err != nil {
		log.Fatal(err)
	}
	if err := iscope.AssignDeadlines(jobs, 61, 0.3); err != nil {
		log.Fatal(err)
	}
	st := jobs.ComputeStats()
	fmt.Printf("trace: %d jobs, span %v, widest job %d CPUs, %v of CPU work\n",
		st.Jobs, st.Span, st.MaxProcs, st.TotalWork)

	// Size the fleet to the trace: room for the widest gang and ~2.5x
	// headroom over the mean parallelism so deadlines are realistic.
	meanParallel := int(float64(st.TotalWork) / float64(st.Span))
	procs := meanParallel * 5 / 2
	if procs < st.MaxProcs*3/2 {
		procs = st.MaxProcs * 3 / 2
	}
	if procs < 64 {
		procs = 64
	}
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(63, procs))
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"BinEffi", "ScanEffi"} {
		scheme, _ := iscope.SchemeByName(name)
		res, err := iscope.Run(fleet, scheme, iscope.RunConfig{Seed: 65, Jobs: jobs})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s on %d CPUs: %s, bill %s, %d deadline misses\n",
			name, procs, res.TotalEnergy, res.Cost, res.DeadlineViolations)
	}
}

func writeSynthetic(path string) error {
	cfg := workload.DefaultSynthConfig(59, 300)
	cfg.MaxProcs = 64
	cfg.Span = units.Days(1)
	tr, err := workload.Synthesize(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return workload.WriteSWF(f, tr, "synthetic LLNL-Thunder-like trace for examples/swftrace")
}
