// Green datacenter scenario: the paper's Figure 7 situation as a
// runnable program. A wind-plus-utility datacenter runs the three Scan
// schemes over the same day; the program prints each scheme's sampled
// power trace (wind budget vs demand vs grid draw) and shows how
// ScanFair tracks the wind curve while ScanEffi minimizes draw and
// ScanRan wastes grid power during lulls.
//
//	go run ./examples/greendc
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"iscope"
)

func main() {
	const procs = 300
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(3, procs))
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := iscope.SynthesizeWorkload(5, 700, 128, 1.5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	wind, err := iscope.GenerateWind(9, 5)
	if err != nil {
		log.Fatal(err)
	}
	wind = wind.Scale(float64(procs) / 4800.0)

	for _, name := range []string{"ScanRan", "ScanEffi", "ScanFair"} {
		scheme, _ := iscope.SchemeByName(name)
		res, err := iscope.Run(fleet, scheme, iscope.RunConfig{
			Seed: 2, Jobs: jobs, Wind: wind,
			SampleInterval: 350, // the paper's Figure 7 sampling period
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — wind %s used of %s offered, grid %s, bill %s\n",
			res.Scheme, res.WindEnergy, res.WindAvailable, res.UtilityEnergy, res.Cost)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "time\twind\tdemand\tgrid draw")
		stride := len(res.Trace) / 16
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < len(res.Trace); i += stride {
			p := res.Trace[i]
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", p.Time, p.Wind, p.Demand, p.Utility)
		}
		if err := tw.Flush(); err != nil {
			log.Fatal(err)
		}
	}
}
