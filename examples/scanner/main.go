// Scanner walkthrough: what iScope's in-cloud profiling actually buys.
// The program builds a fleet, inspects the scan database against the
// factory bin voltages, reports the average voltage margin the scanner
// recovered, prices the scan, and then shows the end-to-end effect by
// running BinEffi vs ScanEffi on the same workload — the paper's ~9%
// (Figure 8).
//
//	go run ./examples/scanner
package main

import (
	"fmt"
	"log"

	"iscope"
)

func main() {
	const procs = 240
	spec := iscope.DefaultFleetSpec(21, procs)
	fleet, err := iscope.BuildFleet(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Compare the scanner's measured minimum voltages with the factory
	// bin voltages, per DVFS level.
	levels := fleet.PM.Table.NumLevels()
	fmt.Println("voltage margin recovered by scanning (bin voltage -> scanned voltage):")
	for l := 0; l < levels; l++ {
		var scanSum, binSum float64
		for id := range fleet.Chips {
			v, ok := fleet.DB.Lookup(id, l)
			if !ok {
				log.Fatalf("chip %d level %d not profiled", id, l)
			}
			scanSum += float64(v)
			binSum += float64(fleet.Binning.Vdd(id, l))
		}
		scanMean := scanSum / float64(procs)
		binMean := binSum / float64(procs)
		fmt.Printf("  level %d (%v): %.3f V -> %.3f V  (%.1f%% shed)\n",
			l, fleet.PM.Table.Levels[l].Freq, binMean, scanMean, 100*(1-scanMean/binMean))
	}

	prices := iscope.DefaultPrices()
	fmt.Printf("\nscan overhead: %d V/F points, %s — %s on wind power (%s on grid)\n",
		fleet.ScanReport.Points, fleet.ScanReport.Energy,
		fleet.ScanReport.Cost(prices.Wind), fleet.ScanReport.Cost(prices.Utility))

	// End to end: the same efficiency-seeking scheduler with and without
	// the profile.
	jobs, err := iscope.SynthesizeWorkload(23, 500, 128, 1, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	var cost [2]iscope.USD
	for i, name := range []string{"BinEffi", "ScanEffi"} {
		scheme, _ := iscope.SchemeByName(name)
		res, err := iscope.Run(fleet, scheme, iscope.RunConfig{Seed: 4, Jobs: jobs})
		if err != nil {
			log.Fatal(err)
		}
		cost[i] = res.Cost
		fmt.Printf("%-8s energy %s, bill %s\n", res.Scheme, res.TotalEnergy, res.Cost)
	}
	fmt.Printf("profiling pays for itself: %.1f%% cheaper (scan cost %s, amortized in one run)\n",
		100*(1-float64(cost[1])/float64(cost[0])), fleet.ScanReport.Cost(prices.Wind))
}
