// Hybrid renewable supply with on-site storage: an extension scenario
// beyond the paper's wind-only setup. The program compares four supply
// configurations — wind only, solar only, wind+solar, and wind+solar
// with a battery — under the ScanFair scheduler, quantifying the
// paper's claim (Section II.A) that storage is a costlier lever than
// demand matching: the battery trims the grid bill, but its capital
// cost dwarfs one run's savings.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"iscope"
)

func main() {
	const procs = 200
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(51, procs))
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := iscope.SynthesizeWorkload(53, 500, 64, 1.5, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	windTr, err := iscope.GenerateWind(55, 5)
	if err != nil {
		log.Fatal(err)
	}
	windTr = windTr.Scale(0.5 * float64(procs) / 4800.0)
	solarTr, err := iscope.GenerateSolar(57, 5)
	if err != nil {
		log.Fatal(err)
	}
	solarTr = solarTr.Scale(0.02 * float64(procs) / 200.0)
	both, err := iscope.HybridSupply(windTr, solarTr)
	if err != nil {
		log.Fatal(err)
	}
	batt := iscope.DefaultBattery(30)

	scheme, _ := iscope.SchemeByName("ScanFair")
	type scenario struct {
		name string
		cfg  iscope.RunConfig
	}
	scenarios := []scenario{
		{"wind only", iscope.RunConfig{Seed: 9, Jobs: jobs, Wind: windTr}},
		{"solar only", iscope.RunConfig{Seed: 9, Jobs: jobs, Wind: solarTr}},
		{"wind + solar", iscope.RunConfig{Seed: 9, Jobs: jobs, Wind: both}},
		{"wind + solar + 30 kWh battery", iscope.RunConfig{Seed: 9, Jobs: jobs, Wind: both, Battery: &batt}},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "supply\tgrid bill\ttotal bill\trenewable used\tbattery delivered")
	for _, sc := range scenarios {
		res, err := iscope.Run(fleet, scheme, sc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n",
			sc.name, res.UtilityCost, res.Cost, res.WindEnergy, res.BatteryDelivered)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbattery capital cost: %s — compare with the per-run grid savings above\n",
		batt.CapitalCost())
}
