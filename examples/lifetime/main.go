// Lifetime balancing study: the paper's Figure 9 as a runnable program.
// Efficiency-greedy scheduling overloads the best chips — they wear out
// and must be replaced individually, which cloud operators hate.
// ScanFair spends surplus wind on the least-used (less efficient)
// processors, resting the efficient ones. The program sweeps the wind
// strength (SWP factor) and prints, per scheme, the variance and spread
// of per-processor utilization time.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"iscope"
)

func main() {
	const procs = 200
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(31, procs))
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := iscope.SynthesizeWorkload(33, 500, 64, 1.5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	base, err := iscope.GenerateWind(35, 5)
	if err != nil {
		log.Fatal(err)
	}
	base = base.Scale(float64(procs) / 4800.0)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SWP\tscheme\tutil variance (h^2)\tbusiest proc\tidlest proc\tgrid bill")
	for _, swp := range []float64{1.0, 1.4, 1.8} {
		wind := base.Scale(swp)
		for _, name := range []string{"ScanRan", "ScanEffi", "ScanFair"} {
			scheme, _ := iscope.SchemeByName(name)
			res, err := iscope.Run(fleet, scheme, iscope.RunConfig{Seed: 6, Jobs: jobs, Wind: wind})
			if err != nil {
				log.Fatal(err)
			}
			lo, hi := res.UtilTimes[0], res.UtilTimes[0]
			for _, u := range res.UtilTimes {
				if u < lo {
					lo = u
				}
				if u > hi {
					hi = u
				}
			}
			fmt.Fprintf(tw, "%.1f\t%s\t%.2f\t%s\t%s\t%s\n",
				swp, res.Scheme, res.UtilVariance, hi, lo, res.UtilityCost)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEffi overloads its favourite chips; Fair narrows the spread while keeping the bill low.")
}
