// Brownout ladder: the same wind-powered datacenter riding through a
// dense supply-dropout storm with and without staged degradation. The
// ladder run climbs through DVFS down-leveling, admission deferral, a
// battery reserve floor and load shedding while the deficit lasts, then
// unwinds back to normal; an online invariant monitor verifies energy
// conservation, SoC bounds and slice accounting at every event. The
// program also runs BinEffi under the identical storm and ladder to
// show the paper's knowledge effect under duress: scanned profiles make
// forced degradation cheaper.
//
//	go run ./examples/brownout
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"iscope"
)

func main() {
	const procs = 300
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(3, procs))
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := iscope.SynthesizeWorkload(5, 600, 128, 1.5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	wind, err := iscope.GenerateWind(9, 5)
	if err != nil {
		log.Fatal(err)
	}
	wind = wind.Scale(float64(procs) / 4800.0)
	// A small battery: enough to blunt a gust, not to ride out an
	// hour-long dropout — that is the ladder's job.
	batt := iscope.DefaultBattery(5)

	// The storm: frequent, deep renewable dropouts.
	storm := iscope.FaultSpec{
		DropoutsPerDay: 10,
		DropoutMeanDur: iscope.Seconds(40 * 60),
		DropoutFloor:   0.05,
		ForecastSigma:  0.2,
	}

	// An aggressive ladder so the staged response is visible in a
	// 1.5-day run; production would keep the defaults.
	ladder, err := iscope.ParseBrownoutSpec("t1=0.05,t2=0.12,t3=0.25,t4=0.45,up=2m,down=15m")
	if err != nil {
		log.Fatal(err)
	}

	scheme, _ := iscope.SchemeByName("ScanEffi")
	base := iscope.RunConfig{
		Seed: 2, Jobs: jobs, Wind: wind, Battery: &batt, Faults: &storm,
		Invariants: &iscope.InvariantsConfig{Action: iscope.RecordInvariants},
	}

	bare, err := iscope.Run(fleet, scheme, base)
	if err != nil {
		log.Fatal(err)
	}

	laddered := base
	laddered.Brownout = &ladder
	managed, err := iscope.Run(fleet, scheme, laddered)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ScanEffi under the storm\tno ladder\tbrownout ladder")
	fmt.Fprintf(tw, "jobs completed\t%d\t%d\n", bare.JobsCompleted, managed.JobsCompleted)
	fmt.Fprintf(tw, "deadline violations\t%d\t%d\n", bare.DeadlineViolations, managed.DeadlineViolations)
	fmt.Fprintf(tw, "utility energy\t%s\t%s\n", bare.UtilityEnergy, managed.UtilityEnergy)
	fmt.Fprintf(tw, "energy cost\t%s\t%s\n", bare.Cost, managed.Cost)
	fmt.Fprintf(tw, "invariant checks\t%d clean\t%d clean\n", bare.Invariants.Checks, managed.Invariants.Checks)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	b := managed.Brownout
	fmt.Println("\nladder ledger (managed run):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "stage transitions\t%d (peak stage %d, final stage %d)\n", b.Transitions, b.MaxStage, b.FinalStage)
	fmt.Fprintf(tw, "forced DVFS down-steps\t%d\n", b.DownlevelSteps)
	fmt.Fprintf(tw, "admissions deferred\t%d (all %d released)\n", b.JobsDeferred, b.DeferredReleases)
	fmt.Fprintf(tw, "battery reserve holds\t%d\n", b.ReserveHolds)
	fmt.Fprintf(tw, "slices shed\t%d (%s work discarded, %d parks / %d releases)\n",
		b.SlicesShed, b.ShedWork, b.ProcsParked, b.ParkReleases)
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// The knowledge effect under duress: identical storm, battery and
	// ladder on factory-bin knowledge.
	binEffi, _ := iscope.SchemeByName("BinEffi")
	binRun, err := iscope.Run(fleet, binEffi, laddered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndegradation cost, equal ladder: ScanEffi shed %s of work vs BinEffi %s\n",
		managed.Brownout.ShedWork, binRun.Brownout.ShedWork)

	if managed.Invariants.Violations == 0 && b.FinalStage == 0 {
		fmt.Println("monitor clean and ladder fully unwound: degradation was staged, bounded and reversible.")
	}
}
