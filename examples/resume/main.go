// Checkpoint and resume: a wind-powered ScanFair run is checkpointed
// every 2 simulated hours, interrupted mid-flight by a canceled
// context, then resumed from the final snapshot. The program prints
// both result summaries and verifies the resumed run is bit-identical
// to an uninterrupted baseline — the core guarantee of the checkpoint
// subsystem.
//
//	go run ./examples/resume
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"reflect"

	"iscope"
)

func main() {
	const procs = 300
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(3, procs))
	if err != nil {
		log.Fatal(err)
	}
	jobs, err := iscope.SynthesizeWorkload(5, 600, 128, 1.5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	wind, err := iscope.GenerateWind(9, 5)
	if err != nil {
		log.Fatal(err)
	}
	wind = wind.Scale(float64(procs) / 4800.0)
	scheme, _ := iscope.SchemeByName("ScanFair")
	base := iscope.RunConfig{Seed: 2, Jobs: jobs, Wind: wind}

	// Baseline: the uninterrupted run the resumed one must match.
	baseline, err := iscope.Run(fleet, scheme, base)
	if err != nil {
		log.Fatal(err)
	}

	// Interrupted run: snapshot every 2 simulated hours, cancel after
	// the third snapshot (as Ctrl-C would). The scheduler flushes one
	// final snapshot before returning the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snaps [][]byte
	ck := base
	ck.Checkpoint = &iscope.CheckpointConfig{
		Every: iscope.Seconds(2 * 3600),
		Sink: func(data []byte) error {
			snaps = append(snaps, append([]byte(nil), data...))
			if len(snaps) == 3 {
				cancel()
			}
			return nil
		},
	}
	_, err = iscope.RunCtx(ctx, fleet, scheme, ck)
	if !errors.Is(err, context.Canceled) {
		log.Fatalf("want context.Canceled, got %v", err)
	}
	final := snaps[len(snaps)-1]
	fmt.Printf("interrupted after %d snapshots (%v); final snapshot %d bytes\n",
		len(snaps), err, len(final))

	// Resume from the final snapshot and finish the run.
	re := base
	re.Resume = final
	resumed, err := iscope.Run(fleet, scheme, re)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s%-18s%s\n", "", "baseline", "resumed")
	fmt.Printf("%-22s%-18d%d\n", "jobs completed", baseline.JobsCompleted, resumed.JobsCompleted)
	fmt.Printf("%-22s%-18s%s\n", "makespan", baseline.Makespan, resumed.Makespan)
	fmt.Printf("%-22s%-18s%s\n", "wind energy used", baseline.WindEnergy, resumed.WindEnergy)
	fmt.Printf("%-22s%-18s%s\n", "utility energy", baseline.UtilityEnergy, resumed.UtilityEnergy)
	fmt.Printf("%-22s%-18s%s\n", "energy cost", baseline.Cost, resumed.Cost)

	if !reflect.DeepEqual(baseline, resumed) {
		log.Fatal("resumed run diverged from the uninterrupted baseline")
	}
	fmt.Println("\nresumed run is bit-identical to the uninterrupted baseline.")
}
