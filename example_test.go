package iscope_test

import (
	"fmt"
	"strings"

	"iscope"
)

// ExampleSchemes lists the paper's Table 2 schemes.
func ExampleSchemes() {
	for _, s := range iscope.Schemes() {
		fmt.Println(s.Name)
	}
	// Output:
	// BinRan
	// BinEffi
	// ScanRan
	// ScanEffi
	// ScanFair
}

// ExampleRun shows the minimal simulation flow: build a fleet, make a
// workload, run a scheme.
func ExampleRun() {
	fleet, err := iscope.BuildFleet(iscope.DefaultFleetSpec(1, 32))
	if err != nil {
		panic(err)
	}
	jobs, err := iscope.SynthesizeWorkload(2, 60, 16, 1, 0.3)
	if err != nil {
		panic(err)
	}
	scheme, _ := iscope.SchemeByName("ScanFair")
	res, err := iscope.Run(fleet, scheme, iscope.RunConfig{Seed: 3, Jobs: jobs})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Scheme, res.JobsCompleted)
	// Output: ScanFair 60
}

// ExampleReadSWF ingests a Parallel Workloads Archive trace.
func ExampleReadSWF() {
	const swf = `; excerpt
1 0 0 600 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 60 0 300 4 -1 -1 4 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	tr, err := iscope.ReadSWF(strings.NewReader(swf), true, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(tr.Jobs), tr.Jobs[0].Procs)
	// Output: 2 8
}

// ExampleGenerateWind synthesizes an NREL-style renewable trace.
func ExampleGenerateWind() {
	tr, err := iscope.GenerateWind(42, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Len(), tr.Interval)
	// Output: 144 10.0 min
}

// ExampleHybridSupply mixes wind and solar into one budget.
func ExampleHybridSupply() {
	w, _ := iscope.GenerateWind(1, 1)
	s, _ := iscope.GenerateSolar(2, 1)
	h, err := iscope.HybridSupply(w, s)
	if err != nil {
		panic(err)
	}
	fmt.Println(h.Len())
	// Output: 144
}
