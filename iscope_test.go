package iscope

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	// The README's quickstart, as a test: build a fleet, synthesize a
	// workload and wind, run BinRan vs ScanFair, expect savings.
	fleet, err := BuildFleet(DefaultFleetSpec(1, 64))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := SynthesizeWorkload(2, 150, 32, 1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := GenerateWind(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Scale wind to the small fleet (the default trace feeds 4800 CPUs).
	w = w.Scale(64.0 / 4800.0)

	base, err := Run(fleet, mustScheme(t, "BinRan"), RunConfig{Seed: 4, Jobs: jobs, Wind: w})
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Run(fleet, mustScheme(t, "ScanFair"), RunConfig{Seed: 4, Jobs: jobs, Wind: w})
	if err != nil {
		t.Fatal(err)
	}
	if ours.UtilityCost >= base.UtilityCost {
		t.Fatalf("ScanFair utility cost %v not below BinRan %v", ours.UtilityCost, base.UtilityCost)
	}
}

func mustScheme(t *testing.T, name string) Scheme {
	t.Helper()
	s, ok := SchemeByName(name)
	if !ok {
		t.Fatalf("scheme %q missing", name)
	}
	return s
}

func TestSchemesExported(t *testing.T) {
	if len(Schemes()) != 5 {
		t.Fatalf("Schemes() = %d, want 5", len(Schemes()))
	}
}

func TestSWFRoundTripThroughFacade(t *testing.T) {
	const swf = `; test
1 0 0 600 8 -1 -1 8 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
2 60 0 300 4 -1 -1 4 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
`
	tr, err := ReadSWF(strings.NewReader(swf), true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(tr.Jobs))
	}
	if err := AssignDeadlines(tr, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	for _, j := range tr.Jobs {
		if j.Deadline <= j.Submit {
			t.Fatal("deadline not assigned")
		}
	}
}

func TestScalesAreOrdered(t *testing.T) {
	q, d, p := QuickScale(1), DefaultScale(1), PaperScale(1)
	if !(q.NumProcs < d.NumProcs && d.NumProcs < p.NumProcs) {
		t.Fatalf("scales not increasing: %d %d %d", q.NumProcs, d.NumProcs, p.NumProcs)
	}
	if p.NumProcs != 4800 {
		t.Fatalf("paper scale = %d CPUs, want 4800", p.NumProcs)
	}
}

func TestDefaultPricesExported(t *testing.T) {
	p := DefaultPrices()
	if p.Utility != 0.13 || p.Wind != 0.05 {
		t.Fatalf("prices = %+v", p)
	}
}

// TestExperimentDriversThroughFacade exercises every root-level
// experiment wrapper at quick scale.
func TestExperimentDriversThroughFacade(t *testing.T) {
	o := QuickScale(12)
	if _, err := Fig4(o); err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if _, err := Fig7(o); err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if _, err := Fig8(o); err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	if _, err := Fig10(o); err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if _, err := Ablations(o); err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	if r, err := AgingStudy(13, 200); err != nil || len(r.Rows) == 0 {
		t.Fatalf("AgingStudy: %v", err)
	}
	if b := DefaultBattery(50); b.Capacity.KWh() != 50 {
		t.Fatalf("DefaultBattery capacity %v", b.Capacity)
	}
}

// TestFig5And6And9ThroughFacade splits the heavier drivers out.
func TestFig5And6And9ThroughFacade(t *testing.T) {
	o := QuickScale(14)
	if _, err := Fig5(o); err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if _, err := Fig6(o); err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if _, err := Fig9(o); err != nil {
		t.Fatalf("Fig9: %v", err)
	}
}
